"""Merge-based SpMM — equal-work nonzero splitting (merge-path).

Row-split kernels (Algorithms 1/2, CRC/CWM) assign one warp per sparse
row, so the longest row dictates when the launch retires: on power-law
graphs a single hub row can hold a double-digit percentage of the
nonzeros and the grid drains waiting for one warp.  Following Yang,
Buluç and Owens ("Design Principles for Sparse Matrix Multiplication on
the GPU"), this kernel instead splits the *merge path* of the CSR
structure — the merged sequence of ``nnz`` nonzeros and ``M`` row-end
markers, ``T = nnz + M`` items total — into segments of equal path
length.  Every warp owns one segment per 32-column output slab:

* **Partition.**  With ``key[r] = rowptr[r] + r``, row ``r`` owns path
  positions ``[key[r], key[r+1])`` (its nonzeros plus one end marker).
  Segment ``s`` covers ``[d_s, d_{s+1})`` with ``d_s = s*T // S`` —
  segment sizes differ by at most one item, independent of the
  row-length distribution (:func:`merge_path_partition`).
* **Search.**  Each warp locates its boundary rows with a branchless
  bisection over ``rowptr`` running exactly ``ceil(log2(M+1))``
  iterations — one broadcast probe per iteration regardless of data, so
  the probe stream is identical in the analytic counters, the batched
  replay, and the per-warp oracle (:func:`_search_probes`).
* **Row carries.**  A row crossing a segment boundary is accumulated
  partially by every segment touching it; each such segment performs a
  C read-modify-write (one extra segment load + store per touching
  segment) instead of a plain store.  The replay keeps full-precision
  accumulators across the carry — the model charges the RMW traffic but
  idealizes the numerics, keeping outputs bit-identical to the CSR-order
  left fold of :func:`repro.gpusim.batchtrace.fold_spmm_rows`.
* **No shared memory.**  Sparse indices/values stream through registers
  in 32-element coalesced chunks and spread lane-to-lane by shuffle, so
  there are no staging stores and no ``__syncwarp``.

The cost of balance is mild: boundary searches, carry traffic, and a
shuffle-serialized inner loop that keeps slightly less memory
parallelism in flight than CRC's shared-memory pipeline (``mlp`` 1.25
vs 1.4).  On uniform matrices merge-path therefore loses a few percent;
on skewed matrices it wins because its drain tail is bounded by the
segment size while row-split's grows with the longest row (see
``ExecHints.tail_sectors`` in :mod:`repro.gpusim.timing` and the
merge-path section of docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.batchtrace import BatchTraceMemory, fold_spmm_rows, ragged_arange
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats, TraceMemory, segment_sectors
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["MergePathSpMM", "MergePartition", "merge_path_partition"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 32 * _WARPS_PER_BLOCK
_CHUNK = 32  # sparse elements streamed per coalesced register chunk
_MIN_ITEMS = 32
_MAX_ITEMS = 256


@dataclass(frozen=True)
class MergePartition:
    """Equal-work split of a CSR merge path into ``S`` segments.

    ``d``, ``i`` and ``j`` are ``int64[S + 1]``: segment ``s`` covers
    path positions ``[d[s], d[s+1])``, starts inside row ``i[s]`` and at
    nonzero index ``j[s]``.  ``d[0] == 0``, ``d[S] == nnz + M``,
    ``j[0] == 0`` and ``j[S] == nnz`` — the nonzero ranges
    ``[j[s], j[s+1])`` tile ``[0, nnz)`` exactly once, and consecutive
    path sizes ``d[s+1] - d[s]`` differ by at most one.
    """

    d: np.ndarray
    i: np.ndarray
    j: np.ndarray

    @property
    def n_segments(self) -> int:
        return self.d.size - 1


def merge_path_partition(rowptr: np.ndarray, items: int) -> MergePartition:
    """Split the merge path of ``rowptr`` into segments of ``<= items``.

    The path has ``T = nnz + M`` items (one per nonzero, one end marker
    per row).  ``S = ceil(T / items)`` segments get ``floor``-balanced
    boundaries ``d_s = s*T // S``; the two-dimensional split point of
    each boundary follows from ``key[r] = rowptr[r] + r``:
    ``i = max{r : key[r] <= d}`` and ``j = d - i``.
    """
    if items < 1:
        raise ValueError("segment size must be at least one path item")
    rowptr = np.asarray(rowptr, dtype=np.int64)
    m = rowptr.size - 1
    total = int(rowptr[-1]) + m
    if total == 0:
        zero = np.zeros(1, dtype=np.int64)
        return MergePartition(d=zero, i=zero.copy(), j=zero.copy())
    n_seg = -(-total // items)
    d = (np.arange(n_seg + 1, dtype=np.int64) * total) // n_seg
    key = rowptr + np.arange(m + 1, dtype=np.int64)
    i = np.searchsorted(key, d, side="right") - 1
    return MergePartition(d=d, i=i, j=d - i)


def _search_probes(rowptr: np.ndarray, d: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Probe sequence of the branchless merge-path boundary search.

    Locates ``lo = max{r : rowptr[r] + r <= d}`` with a fixed-iteration
    bisection: every iteration halves the candidate window to
    ``ceil(size/2)`` whichever way the comparison goes, so all searches
    issue exactly ``K = M.bit_length()`` probes (converged searches
    re-probe their answer).  Returns ``(probes, lo)`` with ``probes``
    ``int64[K, len(d)]`` — the ``rowptr`` index each iteration
    broadcasts — shared verbatim by the analytic counters, the batched
    replay, and the per-warp oracle so all three see the same stream.
    """
    rowptr = np.asarray(rowptr, dtype=np.int64)
    m = rowptr.size - 1
    d = np.asarray(d, dtype=np.int64)
    k_iters = int(m).bit_length()
    lo = np.zeros(d.shape, dtype=np.int64)
    size = np.full(d.shape, m + 1, dtype=np.int64)
    probes = np.empty((k_iters,) + d.shape, dtype=np.int64)
    for k in range(k_iters):
        half = size // 2
        mid = lo + half
        probes[k] = mid
        lo = np.where(rowptr[mid] + mid <= d, mid, lo)
        size = size - half
    return probes, lo


class _Schedule:
    """Derived launch schedule shared by ``count``/``trace``/``trace_loop``.

    Everything here follows deterministically from the partition, so the
    closed forms and both replays agree by construction.
    """

    def __init__(self, a: CSRMatrix, items: int):
        rowptr = a.rowptr64()
        m = a.nrows
        part = merge_path_partition(rowptr, items)
        d, i, j = part.d, part.i, part.j
        self.part = part
        self.n_segments = part.n_segments
        self.search_iters = int(m).bit_length()
        if self.n_segments == 0:
            empty = np.empty(0, dtype=np.int64)
            self.touches = np.empty(0, dtype=np.int64)
            self.split = np.empty(0, dtype=bool)
            self.carry1 = self.carry2 = np.empty(0, dtype=bool)
            self.last_row = empty
            self.chunk_seg = self.chunk_idx = empty
            self.chunk_start = self.chunk_len = empty
            return
        key = rowptr + np.arange(m + 1, dtype=np.int64)
        # Per row: range of touching segments -> carry structure.  A row
        # is *split* when more than one segment touches it; every
        # touching segment of a split row does a C read-modify-write.
        seg_first = np.searchsorted(d, key[:-1], side="right") - 1
        seg_last = np.searchsorted(d, key[1:] - 1, side="right") - 1
        self.seg_first = seg_first
        self.touches = seg_last - seg_first + 1
        self.split = self.touches > 1
        # Carry rows of a segment are at most its two boundary rows: the
        # first row (if split) and the end-boundary row (if the segment
        # holds at least one of its path items).
        self.carry1 = self.split[i[:-1]]
        self.carry2 = (i[1:] > i[:-1]) & (j[1:] > rowptr[i[1:]])
        self.last_row = np.where(j[1:] > rowptr[i[1:]], i[1:], i[1:] - 1)
        # Coalesced 32-element chunks over each segment's nonzero range.
        nz_counts = j[1:] - j[:-1]
        n_chunks = (nz_counts + _CHUNK - 1) // _CHUNK
        self.chunk_seg = np.repeat(
            np.arange(self.n_segments, dtype=np.int64), n_chunks
        )
        self.chunk_idx = ragged_arange(n_chunks)
        self.chunk_start = j[:-1][self.chunk_seg] + _CHUNK * self.chunk_idx
        self.chunk_len = np.minimum(
            _CHUNK, nz_counts[self.chunk_seg] - _CHUNK * self.chunk_idx
        )


class MergePathSpMM(SpMMKernel):
    """Merge-based SpMM with equal-work path segments per warp."""

    name = "mergepath"
    supports_general_semiring = True

    regs_per_thread = 40
    #: the shuffle-serialized register pipeline keeps slightly less
    #: memory parallelism in flight than CRC's two-phase shared staging.
    mlp = 1.25

    def __init__(self, items: int = 0):
        """``items``: merge-path items per segment (0 = size to fill the
        device: enough segments for half the GPU's resident warps,
        clamped to [32, 256] items)."""
        super().__init__()
        if items and items < 1:
            raise ValueError("items must be positive (or 0 for automatic sizing)")
        self.items = int(items)
        if items:
            self.name = f"mergepath(items={items})"

    # -- scheduling ----------------------------------------------------
    def _items_for(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> int:
        if self.items:
            return self.items
        total = a.nnz + a.nrows
        nseg = cnt.warps_per_row(n, 1)
        target_tasks = max(gpu.n_sms * gpu.max_warps_per_sm // 2, 1)
        target_segments = max(-(-target_tasks // nseg), 1)
        items = -(-max(total, 1) // target_segments)
        return min(max(items, _MIN_ITEMS), _MAX_ITEMS)

    def _schedule(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> _Schedule:
        return _Schedule(a, self._items_for(a, n, gpu))

    # -- functional ----------------------------------------------------
    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    # -- analytic ------------------------------------------------------
    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        m, nnz = a.nrows, a.nnz
        nseg = cnt.warps_per_row(n, 1)
        sched = self._schedule(a, n, gpu)
        n_seg_path = sched.n_segments
        tasks = n_seg_path * nseg
        k_iters = sched.search_iters
        gl = stats.global_load

        # Boundary searches: 2K fixed broadcast probes per warp task.
        probe_insts = 2 * k_iters * tasks
        gl.instructions += probe_insts
        gl.transactions += probe_insts
        gl.requested_bytes += 4 * probe_insts
        gl.l1_filtered_transactions += max(probe_insts // 8, 1) if probe_insts else 0

        # Coalesced register chunks of colind and val over each
        # segment's nonzero range (per column-segment warp, like CRC).
        chunk_sectors = int(segment_sectors(sched.chunk_start, sched.chunk_len).sum())
        n_chunks = int(sched.chunk_seg.size)
        gl.instructions += 2 * nseg * n_chunks
        gl.transactions += 2 * nseg * chunk_sectors
        gl.requested_bytes += 2 * nseg * 4 * nnz
        gl.l1_filtered_transactions += 2 * nseg * chunk_sectors

        # Dense-row loads: one B segment per consumed nonzero, exactly
        # the row-split pattern (addresses are identical).
        b_loads = cnt.count_b_loads(a, n)
        gl.instructions += b_loads.instructions
        gl.transactions += b_loads.sectors
        gl.requested_bytes += b_loads.requested_bytes
        gl.l1_filtered_transactions += b_loads.sectors

        # C traffic: every touching segment stores every touched row;
        # split rows add one carry load per touching segment (the RMW).
        rows = np.arange(m, dtype=np.int64)
        touches = sched.touches
        carry_per_row = np.where(sched.split, touches, 0)
        store_insts = int(touches.sum()) * nseg
        carry_insts = int(carry_per_row.sum()) * nseg
        store_sectors = carry_sectors = 0
        store_bytes = carry_bytes = 0
        for seg_start, seg_len in cnt.dense_segments(n):
            sec = segment_sectors(rows * n + seg_start, np.int64(seg_len))
            store_sectors += int((touches * sec).sum())
            carry_sectors += int((carry_per_row * sec).sum())
            store_bytes += 4 * seg_len * int(touches.sum())
            carry_bytes += 4 * seg_len * int(carry_per_row.sum())
        gl.instructions += carry_insts
        gl.transactions += carry_sectors
        gl.requested_bytes += carry_bytes
        gl.l1_filtered_transactions += carry_sectors
        gs = stats.global_store
        gs.instructions += store_insts
        gs.transactions += store_sectors
        gs.requested_bytes += store_bytes

        # No shared memory, no syncs: chunks live in registers and the
        # walk spreads them by shuffle.

        tr = stats.traffic("colind")
        tr.sectors = nseg * chunk_sectors
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = nseg * chunk_sectors
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tp = stats.traffic("rowptr")
        tp.sectors = probe_insts
        tp.unique_bytes = 4 * (m + 1)
        tp.reuse_is_local = True
        tc = stats.traffic("C")
        tc.sectors = carry_sectors
        tc.unique_bytes = m * n * 4
        tc.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # Search arithmetic per probe, per-nonzero walk bookkeeping (the
        # shuffle spread included), per-chunk and per-task loop control.
        stats.alu_instructions = (
            4 * probe_insts + 4 * nnz * nseg + 8 * nseg * n_chunks + 12 * tasks
        )

        launch = LaunchConfig(
            blocks=(tasks + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=0,
        )
        # The drain tail is bounded by the *segment* size, not the
        # longest row — the merge-path headline.  Longest serial chain:
        # one B segment per path item of the largest segment.
        if n_seg_path:
            items_max = int((sched.part.d[1:] - sched.part.d[:-1]).max())
            seg_sec = (min(32, n) + 7) // 8
            tail = float(items_max * seg_sec)
        else:
            tail = 0.0
        return stats, launch, ExecHints(mlp=self.mlp, tail_sectors=tail)

    # -- batched replay ------------------------------------------------
    def trace(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Batched trace replay — bit-identical stats and output to
        :meth:`trace_loop`.

        Warp task ``(segment s, column segment cs)``, in program order:
        ``2K`` boundary-search probes (steps ``0 .. 2K-1``); the carry C
        loads (first row at step ``2K``, end-boundary row at ``2K+1``) —
        placed before the walk so the RMW read precedes its use; per
        32-element chunk ``t`` one contiguous colind load and one values
        load (steps ``2K+2 + 34t``, ``+1``) followed by one contiguous B
        segment load per element ``e`` (step ``2K+4 + 34t + e``);
        finally one C segment store per touched row.
        """
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        nseg = cnt.warps_per_row(n, 1)
        mem = BatchTraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))

        rowptr = a.rowptr64()
        sched = self._schedule(a, n, gpu)
        n_seg_path = sched.n_segments
        if n_seg_path:
            d, i, j = sched.part.d, sched.part.i, sched.part.j
            k_iters = sched.search_iters
            seg_ids = np.arange(n_seg_path, dtype=np.int64)
            base = 2 * k_iters + 2

            probes_lo, _ = _search_probes(rowptr, d[:-1])
            probes_hi, _ = _search_probes(rowptr, d[1:])
            task_grid = (seg_ids[:, None] * nseg + np.arange(nseg)).ravel()
            for probes, step0 in ((probes_lo, 0), (probes_hi, k_iters)):
                if not k_iters:
                    break
                starts = np.repeat(probes, nseg, axis=1)
                mem.load_contiguous(
                    "rowptr",
                    starts.ravel(),
                    1,
                    task=np.tile(task_grid, k_iters),
                    step=np.repeat(np.arange(k_iters, dtype=np.int64) + step0, task_grid.size),
                )

            carry1_rows = i[:-1][sched.carry1]
            carry1_segs = seg_ids[sched.carry1]
            carry2_rows = i[1:][sched.carry2]
            carry2_segs = seg_ids[sched.carry2]
            store_rows = np.repeat(np.arange(m, dtype=np.int64), sched.touches)
            store_segs = np.repeat(sched.seg_first, sched.touches) + ragged_arange(
                sched.touches
            )

            nz_counts = j[1:] - j[:-1]
            nz_seg = np.repeat(seg_ids, nz_counts)
            e = ragged_arange(nz_counts)
            k_cols = a.colind64()[j[:-1][nz_seg] + e]
            b_step = base + 2 + 2 * (e // _CHUNK) + e

            for cs in range(nseg):
                cs0 = 32 * cs
                cs_len = min(32, n - cs0)
                mem.load_contiguous(
                    "C", carry1_rows * n + cs0, cs_len,
                    task=carry1_segs * nseg + cs, step=2 * k_iters,
                )
                mem.load_contiguous(
                    "C", carry2_rows * n + cs0, cs_len,
                    task=carry2_segs * nseg + cs, step=2 * k_iters + 1,
                )
                mem.load_contiguous(
                    "colind", sched.chunk_start, sched.chunk_len,
                    task=sched.chunk_seg * nseg + cs, step=base + 34 * sched.chunk_idx,
                )
                mem.load_contiguous(
                    "values", sched.chunk_start, sched.chunk_len,
                    task=sched.chunk_seg * nseg + cs, step=base + 34 * sched.chunk_idx + 1,
                )
                mem.load_contiguous(
                    "B", k_cols * n + cs0, cs_len,
                    task=nz_seg * nseg + cs, step=b_step,
                )
                mem.store_contiguous(
                    "C", store_rows * n + cs0, cs_len, task=store_segs * nseg + cs
                )

        acc = fold_spmm_rows(
            rowptr, a.colind, mem.buffer("values"), mem.buffer("B").reshape(-1, n),
            semiring.init, semiring.reduce_pair, semiring.combine,
        )
        c = acc.astype(np.float32)
        stats = mem.finalize()
        return (
            semiring.finalize(c.astype(np.float64), a.row_lengths()).astype(np.float32),
            stats,
        )

    # -- per-warp oracle -----------------------------------------------
    def trace_loop(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Reference per-warp loop replay (exact but slow); kept as the
        parity oracle for the batched :meth:`trace`.

        Accumulators are float64 and persist across segment boundaries —
        the carry RMW is charged as C traffic but idealized numerically,
        so the output equals the CSR-order left fold bit-for-bit (the
        contract :func:`~repro.gpusim.batchtrace.fold_spmm_rows` keeps).
        """
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        mem = TraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))

        rowptr = a.rowptr64()
        nz_rows = a.coo_rows()
        sched = self._schedule(a, n, gpu)
        d, i, j = sched.part.d, sched.part.i, sched.part.j
        k_iters = sched.search_iters
        lanes = np.arange(32)
        acc64 = np.full((m, n), semiring.init, dtype=np.float64)
        for s in range(sched.n_segments):
            for cs0 in range(0, n, 32):
                jj = cs0 + lanes
                active = jj < n
                for bound in (int(d[s]), int(d[s + 1])):
                    probes, _ = _search_probes(rowptr, np.array([bound], dtype=np.int64))
                    for k in range(k_iters):
                        mem.load("rowptr", np.full(32, probes[k, 0]))
                if sched.carry1[s]:
                    mem.load("C", int(i[s]) * n + jj, mask=active)
                if sched.carry2[s]:
                    mem.load("C", int(i[s + 1]) * n + jj, mask=active)
                lo_nz, hi_nz = int(j[s]), int(j[s + 1])
                for ptr in range(lo_nz, hi_nz, _CHUNK):
                    chunk_len = min(_CHUNK, hi_nz - ptr)
                    chunk_mask = lanes < chunk_len
                    ks = mem.load("colind", ptr + lanes, mask=chunk_mask)
                    vs = mem.load("values", ptr + lanes, mask=chunk_mask)
                    for e in range(chunk_len):
                        r = int(nz_rows[ptr + e])
                        v = float(vs[e])
                        bv = np.zeros(32)
                        bv[active] = mem.load("B", int(ks[e]) * n + jj, mask=active)
                        acc64[r, jj[active]] = semiring.reduce_pair(
                            acc64[r, jj[active]], semiring.combine(v, bv[active])
                        )
                for r in range(int(i[s]), int(sched.last_row[s]) + 1):
                    out = np.zeros(32, dtype=np.float32)
                    out[active] = acc64[r, jj[active]].astype(np.float32)
                    mem.store("C", r * n + jj, out, mask=active)
        c = mem.buffer("C").reshape(m, n)
        lengths = a.row_lengths()
        return semiring.finalize(c.astype(np.float64), lengths).astype(np.float32), mem.stats

"""Offline coarsening-factor autotuning and the runtime-vs-oracle gap.

The paper deliberately ships a *runtime* kernel with a fixed CF=2 rather
than a per-matrix tuner: "Analytical models for choosing CF could be
difficult ... We turn to an empirical method and experimented on our
dataset ... to find a general best choice of CF" (Section III-C), and
"since our goal is to provide a runtime SpMM kernel, we avoid any
parameter tuning" (Section V-B2).

This module implements the road not taken — an exhaustive offline tuner —
so the design choice can be quantified: ``oracle_gap`` measures how much
performance the fixed policy leaves on the table (the paper reports CF=2
within 15% of optimal on 60-63 of 64 matrices; the ablation benchmark
reproduces that check through this code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.crc import CRCSpMM
from repro.core.cwm import CWMSpMM
from repro.core.mergepath import MergePathSpMM
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.sparse.csr import CSRMatrix

__all__ = [
    "TuneResult",
    "tune_cf",
    "oracle_gap",
    "TunedSpMM",
    "CorpusPriors",
    "RetuneThresholds",
]

DEFAULT_CF_CANDIDATES: Tuple[int, ...] = (1, 2, 4, 8)

# A candidate is a coarsening factor (1 = plain CRC) or the name of a
# structurally different schedule ("mergepath") competing in the same
# tuning run.
Candidate = Union[int, str]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of tuning one (matrix, N, GPU) point."""

    best_cf: Candidate
    times: Dict[Candidate, float]  # candidate -> simulated seconds

    @property
    def best_time(self) -> float:
        return self.times[self.best_cf]

    def loss_of(self, cf: Candidate) -> float:
        """Relative slowdown of choosing ``cf`` instead of the best."""
        return self.times[cf] / self.best_time - 1.0


def _label(c: Candidate):
    return c if isinstance(c, str) else int(c)


def _kernel_for(cf: Candidate) -> SpMMKernel:
    if cf == "mergepath":
        return MergePathSpMM()
    return CRCSpMM() if cf == 1 else CWMSpMM(int(cf))


@dataclass(frozen=True)
class CorpusPriors:
    """Per-regime candidate rankings distilled from a corpus roll-up.

    A corpus sweep (``repro.bench.corpus``) records which kernel wins in
    each structural regime; handed to :func:`tune_cf` as ``priors``, the
    tuner evaluates only the regime's top candidates instead of the full
    grid — the corpus pays the exhaustive cost once, every later tuning
    call amortizes it.  Regimes the corpus never saw (or saw on fewer
    than ``min_matrices`` matrices) fall back to the full candidate set.
    """

    #: regime label -> candidates, best-first (only candidates whose
    #: kernels appeared in the roll-up).
    ranking: Dict[str, Tuple[Candidate, ...]]
    min_matrices: int = 3

    @classmethod
    def from_rollup(
        cls,
        rollup: Dict[str, object],
        candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES,
        min_matrices: int = 3,
    ) -> "CorpusPriors":
        """Distill a ``repro/corpus-rollup/v1`` document into priors.

        Candidates map to roll-up kernels by name (``_kernel_for(c).name``);
        candidates whose kernel the corpus did not run keep their original
        relative order after the ranked ones.
        """
        name_of = {c: _kernel_for(c).name for c in candidates}
        ranking: Dict[str, Tuple[Candidate, ...]] = {}
        regimes = rollup.get("regimes")
        if isinstance(regimes, dict):
            for regime, block in regimes.items():
                if not isinstance(block, dict):
                    continue
                if int(block.get("matrices", 0)) < min_matrices:
                    continue
                rates = block.get("win_rate")
                if not isinstance(rates, dict):
                    continue
                order = {c: i for i, c in enumerate(candidates)}
                ranked = sorted(
                    candidates,
                    key=lambda c: (-float(rates.get(name_of[c], 0.0)), order[c]),
                )
                ranking[str(regime)] = tuple(ranked)
        return cls(ranking=ranking, min_matrices=min_matrices)

    def shortlist(
        self,
        regime: str,
        candidates: Sequence[Candidate],
        top_k: int = 2,
    ) -> Tuple[Candidate, ...]:
        """The regime's top-``top_k`` candidates (restricted to
        ``candidates``), or all of ``candidates`` for unknown regimes."""
        ranked = self.ranking.get(regime)
        if not ranked:
            return tuple(candidates)
        keep = [c for c in ranked if c in candidates][: max(int(top_k), 1)]
        return tuple(keep) if keep else tuple(candidates)


def tune_cf(
    a: CSRMatrix,
    n: int,
    gpu: GPUSpec,
    candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES,
    priors: Optional[CorpusPriors] = None,
    prior_top_k: int = 2,
) -> TuneResult:
    """Exhaustively evaluate the CF candidates on the model and pick the
    fastest (what an offline autotuner would measure on hardware).

    With ``priors`` (a :class:`CorpusPriors`), the candidate grid is
    first narrowed to the matrix's structural regime's top
    ``prior_top_k`` corpus winners — the corpus-informed fast path.
    Default behavior (``priors=None``) is unchanged.
    """
    if not candidates:
        raise ValueError("no CF candidates")
    if priors is not None:
        from repro.sparse.stats import graph_regime  # late: stats is leaf-ish

        regime = graph_regime(a)
        shortlisted = priors.shortlist(regime, candidates, top_k=prior_top_k)
        pruned = len(candidates) - len(shortlisted)
        registry = obs.get_registry()
        registry.counter(
            "tuning.prior.applied", regime=regime, pruned=pruned > 0
        ).inc()
        if pruned:
            registry.counter("tuning.prior.candidates_pruned").inc(pruned)
        candidates = shortlisted
    with obs.span("tune.cf", n=int(n), gpu=gpu.name,
                  candidates=list(_label(c) for c in candidates)) as s:
        times = {cf: _kernel_for(cf).estimate(a, n, gpu).time_s for cf in candidates}
        best = min(times, key=times.get)
        runner_up = min((t for cf, t in times.items() if cf != best), default=times[best])
        # Why this CF won: its margin over the runner-up, kept on the span
        # and in the registry so tuning decisions are auditable later.
        margin = runner_up / times[best] - 1.0 if times[best] > 0 else 0.0
        if s is not None:
            s.attrs["best_cf"] = _label(best)
            s.attrs["margin_over_runner_up"] = margin
            s.attrs["times_ms"] = {
                str(cf): t * 1e3 for cf, t in sorted(times.items(), key=lambda kv: str(kv[0]))
            }
    registry = obs.get_registry()
    registry.counter("tuning.cf_selected", cf=_label(best), gpu=gpu.name).inc()
    registry.observe("tuning.margin_over_runner_up", margin, gpu=gpu.name)
    if 2 in times and times[2] > 0:
        registry.observe(
            "tuning.fixed_cf2_loss", times[2] / times[best] - 1.0, gpu=gpu.name
        )
    return TuneResult(best_cf=best, times=times)


def oracle_gap(
    graphs: Iterable[CSRMatrix],
    n: int,
    gpu: GPUSpec,
    fixed_cf: Candidate = 2,
    candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES,
    threshold: float = 0.15,
) -> Tuple[float, int, List[TuneResult]]:
    """Quantify the fixed-CF policy against the per-matrix oracle.

    Returns ``(worst_loss, n_bad, results)`` where ``n_bad`` counts
    matrices on which the fixed policy loses more than ``threshold``
    (the paper's 15% criterion) to the oracle.
    """
    results = [tune_cf(g, n, gpu, candidates) for g in graphs]
    losses = [r.loss_of(fixed_cf) for r in results]
    n_bad = sum(1 for l in losses if l > threshold)
    return (max(losses) if losses else 0.0, n_bad, results)


@dataclass(frozen=True)
class RetuneThresholds:
    """When is an edge delta big enough to re-run the tuner?

    Per Yang–Buluç–Owens the winning kernel is a function of the
    row-length *distribution*, which is exactly what edge updates
    perturb — so :meth:`TunedSpMM.rekey_after_delta` re-selects only
    when the :func:`~repro.sparse.stats.structural_drift` between the
    old and new matrix version crosses one of these:

    * ``gini_delta`` — absolute change of the row-length Gini
      coefficient (0.05 is well below the 0.5 uniform/skewed regime cut
      but far above what single-edge churn produces);
    * ``max_over_mean_ratio`` — factor by which the longest-row/mean
      ratio may move in either direction before the row-split-vs-merge
      trade-off is considered re-opened;
    * ``on_regime_change`` — a :func:`~repro.sparse.stats.graph_regime`
      relabel always retunes (the regime *is* the tuner's aggregation
      axis).
    """

    gini_delta: float = 0.05
    max_over_mean_ratio: float = 1.5
    on_regime_change: bool = True

    def crossed(self, drift) -> Optional[str]:
        """The name of the first threshold ``drift`` crosses, or None."""
        if drift.gini_delta >= self.gini_delta:
            return "gini"
        if drift.max_over_mean_ratio >= self.max_over_mean_ratio:
            return "max_over_mean"
        if self.on_regime_change and drift.regime_changed:
            return "regime"
        return None


class TunedSpMM(SpMMKernel):
    """A per-(matrix, N, GPU) autotuned SpMM — the preprocessing-flavored
    alternative the paper argues against for runtime use.

    First use on a given key runs the tuner (an offline cost the caller
    should budget like ASpT's preprocess); subsequent calls dispatch to
    the tuned kernel.
    """

    name = "GE-SpMM (autotuned)"
    supports_general_semiring = True
    requires_preprocess = True

    def __init__(self, candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES):
        super().__init__()
        self.candidates = tuple(candidates)
        self._choice: Dict[tuple, SpMMKernel] = {}

    def _select(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> SpMMKernel:
        # Content-addressed: id(a) keys went stale when the GC reused an
        # id for a different matrix (same bug class as the old estimate
        # cache); the fingerprint also lets equal-content matrices share
        # one tuning run.
        key = (a.fingerprint(), int(n), gpu.name)
        kernel = self._choice.get(key)
        obs.get_registry().counter(
            "tuning.tuned_spmm.lookups", cached=kernel is not None, gpu=gpu.name
        ).inc()
        if kernel is None:
            result = tune_cf(a, n, gpu, self.candidates)
            kernel = _kernel_for(result.best_cf)
            self._choice[key] = kernel
        return kernel

    def cache_key(self) -> tuple:
        # The candidate set changes which kernel a matrix dispatches to,
        # so two TunedSpMM with different candidates must never share
        # sweep/estimate memo entries.
        return super().cache_key() + (("candidates", self.candidates),)

    def run(self, a, b, semiring=None, gpu: Optional[GPUSpec] = None):
        from repro.semiring import PLUS_TIMES

        semiring = semiring or PLUS_TIMES
        if gpu is None:
            from repro.gpusim.config import GTX_1080TI

            gpu = GTX_1080TI
        return self._select(a, b.shape[1], gpu).run(a, b, semiring)

    def count(self, a, n, gpu):
        return self._select(a, n, gpu).count(a, n, gpu)

    def tuning_time(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> float:
        """What the tuning itself costs on-device: one timed run per
        candidate (measurement runs execute the real kernel)."""
        return sum(_kernel_for(cf).estimate(a, n, gpu).time_s for cf in self.candidates)

    def rekey_after_delta(
        self,
        old: CSRMatrix,
        new: CSRMatrix,
        thresholds: RetuneThresholds = RetuneThresholds(),
    ) -> bool:
        """Migrate tuning decisions from ``old`` to its delta-successor
        ``new``, re-tuning only when structural drift crosses
        ``thresholds``.

        The tuner's choices are content-addressed on the fingerprint, so
        a delta-built successor never aliases its parent's entries — but
        re-running ``tune_cf`` for every small update would defeat the
        O(Δ) update path.  Instead:

        * drift below every threshold — the old matrix's cached choices
          are *carried over* under the new fingerprint (counter
          ``tuning.tuned_spmm.carryovers``), so a stream of small edge
          updates keeps serving the previously tuned kernel with zero
          tuner invocations;
        * drift crossing a threshold — the stale choices are dropped and
          the next :meth:`run`/:meth:`estimate` re-selects lazily
          (counter ``tuning.tuned_spmm.reselections`` with the crossed
          threshold as the ``reason`` label).

        Returns True when a re-selection was triggered.  An empty delta
        (``old`` and ``new`` share a fingerprint) is a trivial no-op.
        """
        from repro.sparse.stats import structural_drift  # late: avoid cycle

        old_fp, new_fp = old.fingerprint(), new.fingerprint()
        if old_fp == new_fp:
            return False
        drift = structural_drift(old, new)
        reason = thresholds.crossed(drift)
        moved = [k for k in self._choice if k[0] == old_fp]
        registry = obs.get_registry()
        if reason is None:
            for k in moved:
                self._choice[(new_fp,) + k[1:]] = self._choice.pop(k)
            if moved:
                registry.counter("tuning.tuned_spmm.carryovers").inc(len(moved))
            return False
        for k in moved:
            del self._choice[k]
        registry.counter("tuning.tuned_spmm.reselections", reason=reason).inc()
        return True

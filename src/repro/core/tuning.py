"""Offline coarsening-factor autotuning and the runtime-vs-oracle gap.

The paper deliberately ships a *runtime* kernel with a fixed CF=2 rather
than a per-matrix tuner: "Analytical models for choosing CF could be
difficult ... We turn to an empirical method and experimented on our
dataset ... to find a general best choice of CF" (Section III-C), and
"since our goal is to provide a runtime SpMM kernel, we avoid any
parameter tuning" (Section V-B2).

This module implements the road not taken — an exhaustive offline tuner —
so the design choice can be quantified: ``oracle_gap`` measures how much
performance the fixed policy leaves on the table (the paper reports CF=2
within 15% of optimal on 60-63 of 64 matrices; the ablation benchmark
reproduces that check through this code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.crc import CRCSpMM
from repro.core.cwm import CWMSpMM
from repro.core.mergepath import MergePathSpMM
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.sparse.csr import CSRMatrix

__all__ = ["TuneResult", "tune_cf", "oracle_gap", "TunedSpMM"]

DEFAULT_CF_CANDIDATES: Tuple[int, ...] = (1, 2, 4, 8)

# A candidate is a coarsening factor (1 = plain CRC) or the name of a
# structurally different schedule ("mergepath") competing in the same
# tuning run.
Candidate = Union[int, str]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of tuning one (matrix, N, GPU) point."""

    best_cf: Candidate
    times: Dict[Candidate, float]  # candidate -> simulated seconds

    @property
    def best_time(self) -> float:
        return self.times[self.best_cf]

    def loss_of(self, cf: Candidate) -> float:
        """Relative slowdown of choosing ``cf`` instead of the best."""
        return self.times[cf] / self.best_time - 1.0


def _label(c: Candidate):
    return c if isinstance(c, str) else int(c)


def _kernel_for(cf: Candidate) -> SpMMKernel:
    if cf == "mergepath":
        return MergePathSpMM()
    return CRCSpMM() if cf == 1 else CWMSpMM(int(cf))


def tune_cf(
    a: CSRMatrix,
    n: int,
    gpu: GPUSpec,
    candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES,
) -> TuneResult:
    """Exhaustively evaluate the CF candidates on the model and pick the
    fastest (what an offline autotuner would measure on hardware)."""
    if not candidates:
        raise ValueError("no CF candidates")
    with obs.span("tune.cf", n=int(n), gpu=gpu.name,
                  candidates=list(_label(c) for c in candidates)) as s:
        times = {cf: _kernel_for(cf).estimate(a, n, gpu).time_s for cf in candidates}
        best = min(times, key=times.get)
        runner_up = min((t for cf, t in times.items() if cf != best), default=times[best])
        # Why this CF won: its margin over the runner-up, kept on the span
        # and in the registry so tuning decisions are auditable later.
        margin = runner_up / times[best] - 1.0 if times[best] > 0 else 0.0
        if s is not None:
            s.attrs["best_cf"] = _label(best)
            s.attrs["margin_over_runner_up"] = margin
            s.attrs["times_ms"] = {
                str(cf): t * 1e3 for cf, t in sorted(times.items(), key=lambda kv: str(kv[0]))
            }
    registry = obs.get_registry()
    registry.counter("tuning.cf_selected", cf=_label(best), gpu=gpu.name).inc()
    registry.observe("tuning.margin_over_runner_up", margin, gpu=gpu.name)
    if 2 in times and times[2] > 0:
        registry.observe(
            "tuning.fixed_cf2_loss", times[2] / times[best] - 1.0, gpu=gpu.name
        )
    return TuneResult(best_cf=best, times=times)


def oracle_gap(
    graphs: Iterable[CSRMatrix],
    n: int,
    gpu: GPUSpec,
    fixed_cf: Candidate = 2,
    candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES,
    threshold: float = 0.15,
) -> Tuple[float, int, List[TuneResult]]:
    """Quantify the fixed-CF policy against the per-matrix oracle.

    Returns ``(worst_loss, n_bad, results)`` where ``n_bad`` counts
    matrices on which the fixed policy loses more than ``threshold``
    (the paper's 15% criterion) to the oracle.
    """
    results = [tune_cf(g, n, gpu, candidates) for g in graphs]
    losses = [r.loss_of(fixed_cf) for r in results]
    n_bad = sum(1 for l in losses if l > threshold)
    return (max(losses) if losses else 0.0, n_bad, results)


class TunedSpMM(SpMMKernel):
    """A per-(matrix, N, GPU) autotuned SpMM — the preprocessing-flavored
    alternative the paper argues against for runtime use.

    First use on a given key runs the tuner (an offline cost the caller
    should budget like ASpT's preprocess); subsequent calls dispatch to
    the tuned kernel.
    """

    name = "GE-SpMM (autotuned)"
    supports_general_semiring = True
    requires_preprocess = True

    def __init__(self, candidates: Sequence[Candidate] = DEFAULT_CF_CANDIDATES):
        super().__init__()
        self.candidates = tuple(candidates)
        self._choice: Dict[tuple, SpMMKernel] = {}

    def _select(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> SpMMKernel:
        # Content-addressed: id(a) keys went stale when the GC reused an
        # id for a different matrix (same bug class as the old estimate
        # cache); the fingerprint also lets equal-content matrices share
        # one tuning run.
        key = (a.fingerprint(), int(n), gpu.name)
        kernel = self._choice.get(key)
        obs.get_registry().counter(
            "tuning.tuned_spmm.lookups", cached=kernel is not None, gpu=gpu.name
        ).inc()
        if kernel is None:
            result = tune_cf(a, n, gpu, self.candidates)
            kernel = _kernel_for(result.best_cf)
            self._choice[key] = kernel
        return kernel

    def cache_key(self) -> tuple:
        # The candidate set changes which kernel a matrix dispatches to,
        # so two TunedSpMM with different candidates must never share
        # sweep/estimate memo entries.
        return super().cache_key() + (("candidates", self.candidates),)

    def run(self, a, b, semiring=None, gpu: Optional[GPUSpec] = None):
        from repro.semiring import PLUS_TIMES

        semiring = semiring or PLUS_TIMES
        if gpu is None:
            from repro.gpusim.config import GTX_1080TI

            gpu = GTX_1080TI
        return self._select(a, b.shape[1], gpu).run(a, b, semiring)

    def count(self, a, n, gpu):
        return self._select(a, n, gpu).count(a, n, gpu)

    def tuning_time(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> float:
        """What the tuning itself costs on-device: one timed run per
        candidate (measurement runs execute the real kernel)."""
        return sum(_kernel_for(cf).estimate(a, n, gpu).time_s for cf in self.candidates)

"""Shared closed-form access counting for CSR SpMM kernel models.

All simulated kernels decompose the output into (row, column-segment)
warp tasks: a warp owns one sparse row and a contiguous span of output
columns (32 columns per warp, or ``32 * CF`` under Coarse-grained Warp
Merging).  The helpers here compute, fully vectorized, the exact 32-byte
sector counts for the access patterns those kernels share:

* dense-matrix row-segment loads (``B[k, j0:j0+len]``),
* output stores (``C[i, j0:j0+len]``),
* coalesced 32-element sparse tile loads (CRC),
* broadcast walks over a sparse row (Algorithm 1, SpMV-style kernels).

Counts are exact under the alignment established by ``TraceMemory``
(buffers are 32 B aligned).  For dense segments this means: when
``N % 8 == 0`` every row of ``B`` starts on a sector boundary and the
closed form ``ceil(len/8)`` per segment applies; otherwise the count
depends on each nonzero's column and is computed per segment over the
``colind`` array.  The trace-vs-analytic property tests exercise both
paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.gpusim.memory import segment_sectors
from repro.sparse.csr import CSRMatrix

__all__ = [
    "dense_segments",
    "count_b_loads",
    "count_c_stores",
    "count_tile_loads",
    "broadcast_walk_sectors",
    "unique_b_columns",
    "warps_per_row",
]

ELEMS_PER_SECTOR = 8  # 32-byte sector / 4-byte element


def warps_per_row(n: int, cf: int = 1) -> int:
    """Number of warps covering ``n`` output columns at coarsening ``cf``."""
    span = 32 * cf
    return (n + span - 1) // span


def dense_segments(n: int) -> List[Tuple[int, int]]:
    """The ``(start_column, length)`` of each 32-wide warp load segment
    covering ``n`` columns.  Independent of CF: a CF-coarsened warp issues
    CF of these segments itself, so the union over the row is identical.
    """
    return [(s, min(32, n - s)) for s in range(0, n, 32)]


@dataclass(frozen=True)
class AccessTotals:
    """Totals of one access pattern over the whole kernel."""

    instructions: int
    sectors: int
    requested_bytes: int


def count_b_loads(a: CSRMatrix, n: int) -> AccessTotals:
    """Dense-matrix loads: one 32-wide segment load per nonzero per
    segment of the row span.  Exact sector count."""
    segments = dense_segments(n)
    instructions = a.nnz * len(segments)
    requested = a.nnz * n * 4
    if n % ELEMS_PER_SECTOR == 0:
        sectors = a.nnz * sum((length + 7) // 8 for _, length in segments)
    else:
        base = a.colind.astype(np.int64) * n
        sectors = 0
        for start, length in segments:
            sectors += int(segment_sectors(base + start, np.int64(length)).sum())
    return AccessTotals(int(instructions), int(sectors), int(requested))


def count_c_stores(a: CSRMatrix, n: int) -> AccessTotals:
    """Output stores: one segment store per (row, segment)."""
    m = a.nrows
    segments = dense_segments(n)
    instructions = m * len(segments)
    requested = m * n * 4
    if n % ELEMS_PER_SECTOR == 0:
        sectors = m * sum((length + 7) // 8 for _, length in segments)
    else:
        base = np.arange(m, dtype=np.int64) * n
        sectors = 0
        for start, length in segments:
            sectors += int(segment_sectors(base + start, np.int64(length)).sum())
    return AccessTotals(int(instructions), int(sectors), int(requested))


def count_tile_loads(a: CSRMatrix, tile: int = 32) -> AccessTotals:
    """Coalesced tile loads of one sparse-side array (colind *or* values):
    per row, ``ceil(L/tile)`` warp loads of up to ``tile`` consecutive
    elements starting at ``rowptr[i] + t*tile``.

    Returns totals **per column-segment warp** — multiply by the number
    of warps sharing the row to get kernel totals.
    """
    lengths = a.row_lengths()
    n_tiles = (lengths + tile - 1) // tile
    total_tiles = int(n_tiles.sum())
    if total_tiles == 0:
        return AccessTotals(0, 0, 0)
    # Expand one entry per tile: row starts repeated, tile index within row.
    row_of_tile = np.repeat(np.arange(a.nrows, dtype=np.int64), n_tiles)
    tile_idx = np.arange(total_tiles, dtype=np.int64) - np.repeat(
        np.cumsum(n_tiles) - n_tiles, n_tiles
    )
    starts = a.rowptr[:-1].astype(np.int64)[row_of_tile] + tile_idx * tile
    lens = np.minimum(tile, lengths[row_of_tile] - tile_idx * tile)
    sectors = int(segment_sectors(starts, lens).sum())
    requested = int(lens.sum()) * 4
    return AccessTotals(total_tiles, sectors, requested)


def broadcast_walk_sectors(a: CSRMatrix) -> int:
    """Distinct sectors touched when a warp walks a sparse row one
    element at a time (broadcast loads): the L1-filtered transaction
    count of Algorithm 1's sparse loads, per column-segment warp and per
    sparse array."""
    lengths = a.row_lengths()
    starts = a.rowptr[:-1].astype(np.int64)
    return int(segment_sectors(starts, lengths).sum())


def unique_b_columns(a: CSRMatrix) -> int:
    """Number of distinct dense-matrix rows the kernel touches (the
    compulsory footprint of ``B``)."""
    if a.nnz == 0:
        return 0
    return int(np.unique(a.colind).size)

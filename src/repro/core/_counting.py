"""Shared closed-form access counting for CSR SpMM kernel models.

All simulated kernels decompose the output into (row, column-segment)
warp tasks: a warp owns one sparse row and a contiguous span of output
columns (32 columns per warp, or ``32 * CF`` under Coarse-grained Warp
Merging).  The helpers here compute the exact 32-byte sector counts for
the access patterns those kernels share:

* dense-matrix row-segment loads (``B[k, j0:j0+len]``),
* output stores (``C[i, j0:j0+len]``),
* coalesced 32-element sparse tile loads (CRC),
* broadcast walks over a sparse row (Algorithm 1, SpMV-style kernels).

By default every counter routes through the per-matrix
:class:`~repro.core.access_profile.AccessProfile` — histogram closed
forms computed once per matrix and shared across all kernels, widths,
and GPUs.  The original array-expansion implementations are preserved
verbatim below as ``*_oracle`` functions (the repo's scatter-oracle /
trace-loop contract) and enforced as bit-exact parity oracles by
``tests/test_access_profile.py``; ``set_profile_counters(False)`` /
``use_oracle_counters()`` flip the public functions back onto them
(parity tests, ``make microbench``).

Counts are exact under the alignment established by ``TraceMemory``
(buffers are 32 B aligned).  For dense segments this means: when
``N % 8 == 0`` every row of ``B`` starts on a sector boundary and the
closed form ``ceil(len/8)`` per segment applies; otherwise the count
depends on each nonzero's column modulo 8.  The trace-vs-analytic
property tests exercise both paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.core.access_profile import (
    ELEMS_PER_SECTOR,
    AccessTotals,
    dense_segments,
    access_profile,
)
from repro.gpusim.memory import segment_sectors
from repro.sparse.csr import CSRMatrix

__all__ = [
    "dense_segments",
    "AccessTotals",
    "ELEMS_PER_SECTOR",
    "count_b_loads",
    "count_c_stores",
    "count_tile_loads",
    "broadcast_walk_sectors",
    "unique_b_columns",
    "occupied_rows",
    "count_b_loads_oracle",
    "count_c_stores_oracle",
    "count_tile_loads_oracle",
    "broadcast_walk_sectors_oracle",
    "unique_b_columns_oracle",
    "occupied_rows_oracle",
    "warps_per_row",
    "profile_counters_enabled",
    "set_profile_counters",
    "use_oracle_counters",
]

_PROFILE_ENABLED = True


def profile_counters_enabled() -> bool:
    """True when counters route through the cached AccessProfile."""
    return _PROFILE_ENABLED


def set_profile_counters(enabled: bool) -> bool:
    """Toggle profile-backed counting process-wide; returns prior state."""
    global _PROFILE_ENABLED
    prev = _PROFILE_ENABLED
    _PROFILE_ENABLED = bool(enabled)
    return prev


@contextmanager
def use_oracle_counters() -> Iterator[None]:
    """Scope in which the public counters run the ``*_oracle`` bodies."""
    prev = set_profile_counters(False)
    try:
        yield
    finally:
        set_profile_counters(prev)


def warps_per_row(n: int, cf: int = 1) -> int:
    """Number of warps covering ``n`` output columns at coarsening ``cf``."""
    span = 32 * cf
    return (n + span - 1) // span


# ----------------------------------------------------------------------
# Public counters: profile-backed closed forms
# ----------------------------------------------------------------------
def count_b_loads(a: CSRMatrix, n: int) -> AccessTotals:
    """Dense-matrix loads: one 32-wide segment load per nonzero per
    segment of the row span.  Exact sector count."""
    if not _PROFILE_ENABLED:
        return count_b_loads_oracle(a, n)
    return access_profile(a).b_loads(n)


def count_c_stores(a: CSRMatrix, n: int) -> AccessTotals:
    """Output stores: one segment store per (row, segment)."""
    if not _PROFILE_ENABLED:
        return count_c_stores_oracle(a, n)
    return access_profile(a).c_stores(n)


def count_tile_loads(a: CSRMatrix, tile: int = 32) -> AccessTotals:
    """Coalesced tile loads of one sparse-side array (colind *or* values):
    per row, ``ceil(L/tile)`` warp loads of up to ``tile`` consecutive
    elements starting at ``rowptr[i] + t*tile``.

    Returns totals **per column-segment warp** — multiply by the number
    of warps sharing the row to get kernel totals.
    """
    if not _PROFILE_ENABLED or tile % ELEMS_PER_SECTOR != 0:
        # Exotic tiles (not sector multiples) break the phase-histogram
        # identity; no simulated kernel uses one, but stay exact anyway.
        return count_tile_loads_oracle(a, tile)
    return access_profile(a).tile_loads(tile)


def broadcast_walk_sectors(a: CSRMatrix) -> int:
    """Distinct sectors touched when a warp walks a sparse row one
    element at a time (broadcast loads): the L1-filtered transaction
    count of Algorithm 1's sparse loads, per column-segment warp and per
    sparse array."""
    if not _PROFILE_ENABLED:
        return broadcast_walk_sectors_oracle(a)
    return access_profile(a).broadcast_sectors()


def unique_b_columns(a: CSRMatrix) -> int:
    """Number of distinct dense-matrix rows the kernel touches (the
    compulsory footprint of ``B``)."""
    if not _PROFILE_ENABLED:
        return unique_b_columns_oracle(a)
    return access_profile(a).unique_b_columns


def occupied_rows(a: CSRMatrix) -> int:
    """Number of rows holding at least one stored element (SDDMM loads
    one X row per occupied row)."""
    if not _PROFILE_ENABLED:
        return occupied_rows_oracle(a)
    return access_profile(a).occupied_rows


# ----------------------------------------------------------------------
# Parity oracles: the original array-expansion implementations
# ----------------------------------------------------------------------
def count_b_loads_oracle(a: CSRMatrix, n: int) -> AccessTotals:
    """Array-expansion reference for :func:`count_b_loads`: one
    ``segment_sectors`` pass over all nonzeros per column segment."""
    segments = dense_segments(n)
    instructions = a.nnz * len(segments)
    requested = a.nnz * n * 4
    if n % ELEMS_PER_SECTOR == 0:
        sectors = a.nnz * sum((length + 7) // 8 for _, length in segments)
    else:
        base = a.colind64() * np.int64(n)
        sectors = 0
        for start, length in segments:
            sectors += int(segment_sectors(base + start, np.int64(length)).sum())
    return AccessTotals(int(instructions), int(sectors), int(requested))


def count_c_stores_oracle(a: CSRMatrix, n: int) -> AccessTotals:
    """Array-expansion reference for :func:`count_c_stores`."""
    m = a.nrows
    segments = dense_segments(n)
    instructions = m * len(segments)
    requested = m * n * 4
    if n % ELEMS_PER_SECTOR == 0:
        sectors = m * sum((length + 7) // 8 for _, length in segments)
    else:
        base = np.arange(m, dtype=np.int64) * n
        sectors = 0
        for start, length in segments:
            sectors += int(segment_sectors(base + start, np.int64(length)).sum())
    return AccessTotals(int(instructions), int(sectors), int(requested))


def count_tile_loads_oracle(a: CSRMatrix, tile: int = 32) -> AccessTotals:
    """Array-expansion reference for :func:`count_tile_loads`: one entry
    per tile, valid for any ``tile >= 1``."""
    lengths = a.row_lengths()
    n_tiles = (lengths + tile - 1) // tile
    total_tiles = int(n_tiles.sum())
    if total_tiles == 0:
        return AccessTotals(0, 0, 0)
    # Expand one entry per tile: row starts repeated, tile index within row.
    row_of_tile = np.repeat(np.arange(a.nrows, dtype=np.int64), n_tiles)
    tile_idx = np.arange(total_tiles, dtype=np.int64) - np.repeat(
        np.cumsum(n_tiles) - n_tiles, n_tiles
    )
    starts = a.rowptr64()[:-1][row_of_tile] + tile_idx * tile
    lens = np.minimum(tile, lengths[row_of_tile] - tile_idx * tile)
    sectors = int(segment_sectors(starts, lens).sum())
    requested = int(lens.sum()) * 4
    return AccessTotals(total_tiles, sectors, requested)


def broadcast_walk_sectors_oracle(a: CSRMatrix) -> int:
    """Array-expansion reference for :func:`broadcast_walk_sectors`."""
    lengths = a.row_lengths()
    starts = a.rowptr64()[:-1]
    return int(segment_sectors(starts, lengths).sum())


def unique_b_columns_oracle(a: CSRMatrix) -> int:
    """Array-expansion reference for :func:`unique_b_columns`."""
    if a.nnz == 0:
        return 0
    return int(np.unique(a.colind).size)


def occupied_rows_oracle(a: CSRMatrix) -> int:
    """Array-expansion reference for :func:`occupied_rows`."""
    return int((a.row_lengths() > 0).sum())

"""Epilogue fusion: SpMM fused with bias/activation.

The paper's PyG comparison rests on fusion ("message-passing first
generates message on all edges explicitly and then reduces them, while
SpMM can fuse these two stages into one kernel", Section II-C).  The
same logic extends one level further: GNN layers follow aggregation with
a bias add and an activation — two extra bandwidth-bound kernels that
re-stream the whole output.  :class:`FusedGESpMM` applies those epilogues
inside the SpMM's store phase: identical global traffic for the SpMM
itself, a few extra FLOPs, and the elementwise kernels (and their
launches) disappear.

The ablation benchmark ``bench_ext_fusion.py`` prices the saving; the
DGL backend can opt in via its layers calling the fused op directly.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.gespmm import GESpMM
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.batchtrace import BatchTraceMemory
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import TraceMemory
from repro.sparse.csr import CSRMatrix

__all__ = ["Epilogue", "FusedGESpMM", "RELU_EPILOGUE"]


class Epilogue:
    """A per-element output transform applied in the SpMM store phase.

    ``fn(C, bias) -> C'`` must be elementwise over rows (vectorized);
    ``flops_per_element`` prices its arithmetic.
    """

    def __init__(self, name: str, fn: Callable[[np.ndarray, Optional[np.ndarray]], np.ndarray],
                 flops_per_element: int = 1, uses_bias: bool = False):
        self.name = name
        self.fn = fn
        self.flops_per_element = int(flops_per_element)
        self.uses_bias = bool(uses_bias)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Epilogue({self.name})"


RELU_EPILOGUE = Epilogue("relu", lambda c, b: np.maximum(c, 0.0), flops_per_element=1)


def bias_relu_epilogue() -> Epilogue:
    return Epilogue(
        "bias+relu",
        lambda c, b: np.maximum(c + b[None, :], 0.0),
        flops_per_element=2,
        uses_bias=True,
    )


class FusedGESpMM(SpMMKernel):
    """GE-SpMM with a fused output epilogue.

    Memory behaviour equals the wrapped adaptive kernel (the epilogue
    reads the accumulator registers, not memory); the epilogue's FLOPs
    are added; and the *saved* work is everything the separate
    elementwise kernel(s) would have cost — exposed via
    :meth:`unfused_epilogue_time` so benchmarks can report the delta.
    """

    supports_general_semiring = True

    def __init__(self, epilogue: Epilogue = RELU_EPILOGUE):
        super().__init__()
        self.epilogue = epilogue
        self._inner = GESpMM()
        self.name = f"GE-SpMM+{epilogue.name}"

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES,
            bias: Optional[np.ndarray] = None) -> np.ndarray:
        c = self._inner.run(a, b, semiring)
        if self.epilogue.uses_bias:
            if bias is None:
                raise ValueError(f"epilogue {self.epilogue.name!r} requires a bias vector")
            if bias.shape != (c.shape[1],):
                raise ValueError("bias length must equal the output width")
        return self.epilogue.fn(c, bias).astype(np.float32)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats, launch, hints = self._inner.count(a, n, gpu)
        stats.flops += self.epilogue.flops_per_element * a.nrows * n
        if self.epilogue.uses_bias:
            # One extra broadcast-friendly load of the bias row per block.
            stats.global_load.instructions += launch.blocks
            extra = max((n * 4 + 31) // 32, 1) * launch.blocks
            stats.global_load.transactions += extra
            stats.global_load.l1_filtered_transactions += max(extra // 8, 1)
            stats.global_load.requested_bytes += 4 * n * launch.blocks
        return stats, launch, hints

    def trace(self, a, b, gpu, semiring: Semiring = PLUS_TIMES,
              bias: Optional[np.ndarray] = None):
        """Warp-level execution of the wrapped kernel plus the fused
        epilogue.  The epilogue itself works on accumulator registers, so
        the only extra memory traffic is the bias row: one warp-wide load
        of ``bias[0:N]`` per block, replayed (batched, like the wrapped
        kernel's accesses) so its instruction/transaction/requested-byte
        totals match the analytic model in :meth:`count` exactly."""
        c, stats = self._inner.trace(a, b, gpu, semiring)
        n = int(b.shape[1])
        if self.epilogue.uses_bias:
            if bias is None:
                raise ValueError(f"epilogue {self.epilogue.name!r} requires a bias vector")
            if bias.shape != (n,):
                raise ValueError("bias length must equal the output width")
            _, launch, _ = self._inner.count(a, n, gpu)
            mem = BatchTraceMemory(l1_caches_global=gpu.l1_caches_global)
            mem.register("bias", np.asarray(bias, dtype=np.float32))
            blocks = np.arange(launch.blocks, dtype=np.int64)
            mem.load_contiguous(
                "bias", np.zeros_like(blocks), n, task=blocks, step=0
            )
            stats.merge(mem.finalize())
        return self.epilogue.fn(c, bias).astype(np.float32), stats

    def trace_loop(self, a, b, gpu, semiring: Semiring = PLUS_TIMES,
                   bias: Optional[np.ndarray] = None):
        """Reference per-warp loop replay (exact but slow); kept as the
        parity oracle for the batched :meth:`trace`."""
        c, stats = self._inner.trace_loop(a, b, gpu, semiring)
        n = int(b.shape[1])
        if self.epilogue.uses_bias:
            if bias is None:
                raise ValueError(f"epilogue {self.epilogue.name!r} requires a bias vector")
            if bias.shape != (n,):
                raise ValueError("bias length must equal the output width")
            _, launch, _ = self._inner.count(a, n, gpu)
            mem = TraceMemory(l1_caches_global=gpu.l1_caches_global)
            mem.register("bias", np.asarray(bias, dtype=np.float32))
            idx = np.arange(n)
            for _ in range(launch.blocks):
                mem.load("bias", idx)
            stats.merge(mem.stats)
        return self.epilogue.fn(c, bias).astype(np.float32), stats

    def unfused_epilogue_time(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> float:
        """What the equivalent standalone elementwise kernel(s) cost: a
        full read + write of C per epilogue stage, plus launches."""
        stages = 2 if self.epilogue.uses_bias else 1
        nbytes = 2 * a.nrows * n * 4
        per_stage = nbytes / (0.8 * gpu.dram_bandwidth) + gpu.launch_overhead_s
        return stages * per_stage

    def fusion_saving(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> float:
        """End-to-end relative saving of fusing the epilogue."""
        fused = self.estimate(a, n, gpu).time_s
        unfused = self._inner.estimate(a, n, gpu).time_s + self.unfused_epilogue_time(a, n, gpu)
        return unfused / fused

"""Algorithm 1 — simple parallel CSR SpMM (the paper's unoptimized base).

Parallelization: each thread owns one output element ``C[i, j]``; threads
of a warp share the row ``i`` and cover 32 consecutive columns, so dense
loads ``B[k, j]`` coalesce but the sparse-row walk is a sequence of
*broadcast* loads — every lane requests the same ``colind[ptr]`` /
``val[ptr]`` address, one 32-byte transaction carrying 4 useful bytes
(paper Fig. 2).  Coalesced Row Caching exists to remove exactly this
pattern.
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.batchtrace import BatchTraceMemory, fold_spmm_rows, ragged_arange
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats, TraceMemory
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["SimpleSpMM"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 32 * _WARPS_PER_BLOCK


class SimpleSpMM(SpMMKernel):
    """Simple parallel CSR SpMM (paper Algorithm 1)."""

    name = "simple"
    supports_general_semiring = True

    #: estimated register footprint (accumulator + pointers + indices)
    regs_per_thread = 24
    #: three request streams per inner step (colind, val, B) can all be
    #: outstanding at once.
    mlp = 3.0

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        wpr = cnt.warps_per_row(n, 1)
        m, nnz = a.nrows, a.nnz

        b_loads = cnt.count_b_loads(a, n)
        stats.global_load.instructions += b_loads.instructions
        stats.global_load.transactions += b_loads.sectors
        stats.global_load.requested_bytes += b_loads.requested_bytes
        stats.global_load.l1_filtered_transactions += b_loads.sectors  # no reuse

        # Broadcast sparse walk: 2 loads (colind, val) per nonzero per warp,
        # 1 sector each, 4 useful bytes each.
        bc_insts = 2 * nnz * wpr
        stats.global_load.instructions += bc_insts
        stats.global_load.transactions += bc_insts
        stats.global_load.requested_bytes += 4 * bc_insts
        # With an L1 (Turing) the sequential walk re-hits its sector 7 of
        # 8 times; the surviving traffic equals the coalesced walk.
        stats.global_load.l1_filtered_transactions += 2 * wpr * cnt.broadcast_walk_sectors(a)

        # rowPtr: two broadcast loads per (row, segment) warp.
        rp_insts = 2 * m * wpr
        stats.global_load.instructions += rp_insts
        stats.global_load.transactions += rp_insts
        stats.global_load.requested_bytes += 4 * rp_insts
        stats.global_load.l1_filtered_transactions += max(rp_insts // 8, 1) if m else 0

        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes

        tr = stats.traffic("colind")
        tr.sectors = nnz * wpr
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = nnz * wpr
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tp = stats.traffic("rowptr")
        tp.sectors = rp_insts
        tp.unique_bytes = 4 * (m + 1)
        tp.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # Loop bookkeeping per nonzero step (pointer compare/increment,
        # address arithmetic) plus per-warp prologue/epilogue.
        stats.alu_instructions = 6 * nnz * wpr + 12 * m * wpr

        tasks = m * wpr
        launch = LaunchConfig(
            blocks=(tasks + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=0,
        )
        return stats, launch, ExecHints(mlp=self.mlp)

    def trace(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Batched trace replay — bit-identical stats and output to
        :meth:`trace_loop` (see ``repro.gpusim.batchtrace``).

        Warp task ``(row i, segment s)`` issues, in program order: two
        rowptr broadcasts, then per nonzero a colind broadcast, a values
        broadcast, and one contiguous B segment load; finally one C
        segment store.  All tasks' records are emitted as flat arrays.
        """
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        nseg = cnt.warps_per_row(n, 1)
        mem = BatchTraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))

        rowptr = a.rowptr64()
        lengths = rowptr[1:] - rowptr[:-1]
        tasks = np.arange(m * nseg, dtype=np.int64)
        row_of_task = tasks // nseg
        seg_of_task = (tasks % nseg) * 32
        seg_len_task = np.minimum(32, n - seg_of_task)

        # Two rowptr broadcasts per task (steps 0, 1).
        mem.load_contiguous("rowptr", row_of_task, 1, task=tasks, step=0)
        mem.load_contiguous("rowptr", row_of_task + 1, 1, task=tasks, step=1)

        # Per consumed nonzero: colind broadcast (step 2+3t), values
        # broadcast (3+3t), contiguous B segment (4+3t).
        len_of_task = lengths[row_of_task]
        nz_task = np.repeat(tasks, len_of_task)
        t = ragged_arange(len_of_task)
        ptr = rowptr[row_of_task[nz_task]] + t
        k = a.colind64()[ptr]
        mem.load_contiguous("colind", ptr, 1, task=nz_task, step=2 + 3 * t)
        mem.load_contiguous("values", ptr, 1, task=nz_task, step=3 + 3 * t)
        mem.load_contiguous(
            "B",
            k * n + seg_of_task[nz_task],
            seg_len_task[nz_task],
            task=nz_task,
            step=4 + 3 * t,
        )
        mem.store_contiguous("C", row_of_task * n + seg_of_task, seg_len_task, task=tasks)

        acc = fold_spmm_rows(
            rowptr, a.colind, mem.buffer("values"), mem.buffer("B").reshape(-1, n),
            semiring.init, semiring.reduce_pair, semiring.combine,
        )
        c = acc.astype(np.float32)
        stats = mem.finalize()
        return (
            semiring.finalize(c.astype(np.float64), a.row_lengths()).astype(np.float32),
            stats,
        )

    def trace_loop(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Reference per-warp loop replay (exact but slow); kept as the
        parity oracle for the batched :meth:`trace`."""
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        mem = TraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))
        lanes = np.arange(32)
        for i in range(m):
            for seg in range(0, n, 32):
                j = seg + lanes
                active = j < n
                row_start = int(mem.load("rowptr", np.full(32, i))[0])
                row_end = int(mem.load("rowptr", np.full(32, i + 1))[0])
                acc = np.full(32, semiring.init, dtype=np.float64)
                for ptr in range(row_start, row_end):
                    k = int(mem.load("colind", np.full(32, ptr))[0])
                    v = float(mem.load("values", np.full(32, ptr))[0])
                    bv = np.zeros(32)
                    bv[active] = mem.load("B", k * n + j, mask=active)
                    acc[active] = semiring.reduce_pair(
                        acc[active], semiring.combine(v, bv[active])
                    )
                mem.store("C", i * n + j, acc.astype(np.float32), mask=active)
        c = mem.buffer("C").reshape(m, n)
        lengths = a.row_lengths()
        return semiring.finalize(c.astype(np.float64), lengths).astype(np.float32), mem.stats

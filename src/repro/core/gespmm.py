"""GE-SpMM: the adaptive, general-purpose SpMM front-end.

This is the paper's deliverable (Section IV): a runtime kernel that

* takes plain CSR — zero preprocessing, so it drops into GNN frameworks;
* supports *SpMM-like* operations through user-defined init/reduce
  (:mod:`repro.core.semiring`), which cuSPARSE does not;
* adapts to the feature width ``N``: for ``N <= 32`` warp merging cannot
  help (a single warp already spans the row) so plain CRC runs; for
  ``N > 32`` it runs CRC + CWM with the empirically-chosen CF=2 — the
  paper avoids per-matrix tuning because CF=2 is within 15% of optimal on
  63/64 and 60/64 of the SNAP matrices on its two GPUs (Fig. 9).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.core.crc import CRCSpMM
from repro.core.cwm import CWMSpMM
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.sparse.csr import CSRMatrix

__all__ = ["GESpMM", "gespmm", "gespmm_like"]

#: feature widths at or below this run CRC without warp merging
ADAPTIVE_THRESHOLD = 32
#: the paper's fixed runtime coarsening factor
DEFAULT_CF = 2


class GESpMM(SpMMKernel):
    """Adaptive GE-SpMM kernel (CRC for small N, CRC+CWM otherwise)."""

    name = "GE-SpMM"
    supports_general_semiring = True

    def __init__(self, cf: int = DEFAULT_CF, threshold: int = ADAPTIVE_THRESHOLD):
        super().__init__()
        self.cf = int(cf)
        self.threshold = int(threshold)
        self._crc = CRCSpMM()
        self._cwm = CWMSpMM(cf=self.cf)

    def select(self, n: int) -> SpMMKernel:
        """The concrete kernel the adaptive dispatch picks for width ``n``."""
        if n <= self.threshold:
            path, reason = "crc", "n<=threshold: one warp already spans the row"
            picked: SpMMKernel = self._crc
        else:
            path, reason = "cwm", f"n>threshold: warp merging with CF={self.cf} pays"
            picked = self._cwm
        obs.get_registry().counter(
            "gespmm.dispatch", path=path, reason=reason, threshold=self.threshold
        ).inc()
        return picked

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        return self.select(b.shape[1]).run(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        return self.select(n).count(a, n, gpu)

    def trace(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        return self.select(b.shape[1]).trace(a, b, gpu, semiring)

    def trace_loop(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        return self.select(b.shape[1]).trace_loop(a, b, gpu, semiring)


def gespmm(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Convenience one-shot standard SpMM, ``C = A @ B``."""
    return GESpMM().run(a, np.asarray(b, dtype=np.float32))


def gespmm_like(
    a: CSRMatrix, b: np.ndarray, semiring: Semiring, kernel: Optional[GESpMM] = None
) -> np.ndarray:
    """Convenience one-shot SpMM-like operation under ``semiring``."""
    return (kernel or GESpMM()).run(a, np.asarray(b, dtype=np.float32), semiring)

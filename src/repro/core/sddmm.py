"""SDDMM: the companion operator for attention-style GNNs.

The paper closes by noting that "future GNN models may also use
customized reduction functions" and that frameworks need flexible sparse
primitives; its open-source successor (dgSPARSE, by the same group)
pairs GE-SpMM with **SDDMM** — Sampled Dense-Dense Matrix Multiplication:

    E[i, j] = <X[i, :], Y[j, :]>   for every nonzero (i, j) of a mask A

SDDMM computes attention logits on edges (GAT, Transformer-style GNNs);
an edge-softmax then rescales them and an SpMM aggregates.  We implement
the same kernel family here so the GNN substrate can express GAT-like
models end to end:

* functional execution against a dense oracle;
* an access-pattern model in the same style as the SpMM kernels: per
  nonzero, a warp loads one row of X (coalesced) and one row of Y
  (coalesced) and reduces the product with a shuffle tree;
* edge-softmax as a segment operation over CSR rows.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core import _counting as cnt
from repro.gpusim.batchtrace import BatchTraceMemory, ragged_arange
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats, TraceMemory
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

__all__ = ["GESDDMM", "reference_sddmm", "edge_softmax"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 128


def reference_sddmm(mask: CSRMatrix, x: np.ndarray, y: np.ndarray) -> CSRMatrix:
    """Oracle SDDMM: per stored (i, j), ``<X[i], Y[j]>`` (times the
    mask's stored value, matching cuSPARSE's constrained semantics)."""
    x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
    y = np.ascontiguousarray(y, dtype=VALUE_DTYPE)
    if x.shape[0] != mask.nrows or y.shape[0] != mask.ncols or x.shape[1] != y.shape[1]:
        raise ValueError(
            f"SDDMM shapes inconsistent: mask {mask.shape}, X {x.shape}, Y {y.shape}"
        )
    rows = np.repeat(np.arange(mask.nrows, dtype=np.int64), mask.row_lengths())
    cols = mask.colind.astype(np.int64)
    dots = np.einsum("ij,ij->i", x[rows], y[cols]).astype(VALUE_DTYPE)
    return mask.with_values(mask.values * dots)


def edge_softmax(logits: CSRMatrix) -> CSRMatrix:
    """Row-wise (destination-wise) softmax over stored edge values —
    the normalization between SDDMM and the aggregating SpMM in GAT."""
    lengths = logits.row_lengths()
    rows = np.repeat(np.arange(logits.nrows, dtype=np.int64), lengths)
    vals = logits.values.astype(np.float64)
    row_max = np.full(logits.nrows, -np.inf)
    np.maximum.at(row_max, rows, vals)
    shifted = np.exp(vals - row_max[rows])
    row_sum = np.zeros(logits.nrows)
    np.add.at(row_sum, rows, shifted)
    return logits.with_values((shifted / row_sum[rows]).astype(VALUE_DTYPE))


class GESDDMM(SpMMKernel):
    """SDDMM kernel model in the GE-SpMM style (warp per nonzero tile).

    One warp processes a run of nonzeros of a row: it streams X[i, :]
    once into registers/shared (coalesced, reused across the run) and,
    per nonzero, streams Y[j, :] coalesced and reduces with a shuffle
    tree.  The ``run``/``count`` interface matches the SpMM kernels, with
    ``b`` standing for Y and the X operand supplied via :meth:`run_xy`.
    """

    name = "GE-SDDMM"
    supports_general_semiring = False  # dot-product reduction is fixed
    regs_per_thread = 36
    mlp = 2.5

    def run(self, a: CSRMatrix, b: np.ndarray, semiring=None):  # pragma: no cover
        raise NotImplementedError("SDDMM needs two dense operands; use run_xy(mask, x, y)")

    def run_xy(self, mask: CSRMatrix, x: np.ndarray, y: np.ndarray) -> CSRMatrix:
        return reference_sddmm(mask, x, y)

    def trace(self, a, b, gpu, semiring=None):
        raise NotImplementedError(
            "GESDDMM.trace is intentionally unsupported: SDDMM takes two "
            "dense operands (X and Y), which the SpMMKernel.trace(a, b, gpu) "
            "signature cannot express — call trace_xy(mask, x, y, gpu) instead"
        )

    def trace_xy(
        self, mask: CSRMatrix, x: np.ndarray, y: np.ndarray, gpu: GPUSpec
    ) -> Tuple[CSRMatrix, KernelStats]:
        """Faithful warp-level SDDMM execution with exact coalescing.

        Mirrors the access model in :meth:`count`: per occupied row the
        warp streams X[i, :] once (coalesced 32-wide segments, reused for
        the whole run), then per nonzero streams Y[j, :] the same way and
        reduces with a shuffle tree (no memory traffic); mask structure
        moves as coalesced 32-element tiles and the output as one value
        per nonzero along the run.  Sector parity with the closed-form
        counters holds when ``N % 8 == 0`` (rows of X and Y start on
        sector boundaries — the same alignment caveat as the analytic
        dense counters); other widths remain functionally exact but the
        closed form over-counts boundary sectors.

        Batched trace replay — bit-identical stats and output to
        :meth:`trace_xy_loop` (see ``repro.gpusim.batchtrace``).  Warp
        task = occupied row ``i``; program order: the ``nseg`` X segment
        loads (steps ``0..nseg-1``); per 32-nonzero tile ``t`` (step base
        ``nseg + t (2 + 32 nseg)``) colind + values loads; per tile
        element ``e`` the ``nseg`` Y segment loads at steps
        ``base + 2 + e*nseg + s``; one E store per tile.
        """
        x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
        y = np.ascontiguousarray(y, dtype=VALUE_DTYPE)
        if x.shape[0] != mask.nrows or y.shape[0] != mask.ncols or x.shape[1] != y.shape[1]:
            raise ValueError(
                f"SDDMM shapes inconsistent: mask {mask.shape}, X {x.shape}, Y {y.shape}"
            )
        n = x.shape[1]
        mem = BatchTraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("colind", mask.colind)
        mem.register("values", mask.values)
        mem.register("X", x.ravel())
        mem.register("Y", y.ravel())
        mem.register("E", np.zeros(mask.nnz, dtype=VALUE_DTYPE))
        segs = cnt.dense_segments(n)
        nseg = len(segs)
        seg_start = np.array([s for s, _ in segs], dtype=np.int64)
        seg_len = np.array([length for _, length in segs], dtype=np.int64)

        rowptr = mask.rowptr64()
        lengths = rowptr[1:] - rowptr[:-1]
        m = mask.nrows

        occupied = np.nonzero(lengths > 0)[0]
        x_task = np.repeat(occupied, nseg)
        x_seg = np.tile(np.arange(nseg, dtype=np.int64), occupied.size)
        mem.load_contiguous(
            "X", x_task * n + seg_start[x_seg], seg_len[x_seg], task=x_task, step=x_seg
        )

        ntiles_row = (lengths + 31) // 32
        tile_row = np.repeat(np.arange(m, dtype=np.int64), ntiles_row)
        tt = ragged_arange(ntiles_row)
        tile_ptr = rowptr[tile_row] + 32 * tt
        tile_len = np.minimum(32, lengths[tile_row] - 32 * tt)
        tile_base = nseg + tt * (2 + 32 * nseg)
        mem.load_contiguous("colind", tile_ptr, tile_len, task=tile_row, step=tile_base)
        mem.load_contiguous("values", tile_ptr, tile_len, task=tile_row, step=tile_base + 1)

        nz_row = np.repeat(np.arange(m, dtype=np.int64), lengths)
        t = ragged_arange(lengths)
        k = mask.colind64()
        y_task = np.repeat(nz_row, nseg)
        y_seg = np.tile(np.arange(nseg, dtype=np.int64), int(mask.nnz))
        y_k = np.repeat(k, nseg)
        y_base = nseg + np.repeat(t // 32, nseg) * (2 + 32 * nseg)
        mem.load_contiguous(
            "Y",
            y_k * n + seg_start[y_seg],
            seg_len[y_seg],
            task=y_task,
            step=y_base + 2 + np.repeat(t % 32, nseg) * nseg + y_seg,
        )
        mem.store_contiguous("E", tile_ptr, tile_len, task=tile_row)

        # Numerics: per-segment float64 dot products accumulated in
        # segment order — the exact operation sequence of the loop replay
        # (np.dot promotes its float32 operand to float64 first).
        x64 = x.astype(np.float64)
        y64 = y.astype(np.float64)
        dots = np.zeros(mask.nnz)
        for idx in range(int(mask.nnz)):
            i = int(nz_row[idx])
            kk = int(k[idx])
            acc = 0.0
            for start, length in segs:
                acc += float(
                    np.dot(x64[i, start:start + length], y64[kk, start:start + length])
                )
            dots[idx] = acc
        evals = np.zeros(mask.nnz, dtype=VALUE_DTYPE)
        evals[:] = mask.values.astype(np.float64) * dots
        stats = mem.finalize()
        return mask.with_values(evals), stats

    def trace_xy_loop(
        self, mask: CSRMatrix, x: np.ndarray, y: np.ndarray, gpu: GPUSpec
    ) -> Tuple[CSRMatrix, KernelStats]:
        """Reference per-warp loop replay (exact but slow); kept as the
        parity oracle for the batched :meth:`trace_xy`."""
        x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
        y = np.ascontiguousarray(y, dtype=VALUE_DTYPE)
        if x.shape[0] != mask.nrows or y.shape[0] != mask.ncols or x.shape[1] != y.shape[1]:
            raise ValueError(
                f"SDDMM shapes inconsistent: mask {mask.shape}, X {x.shape}, Y {y.shape}"
            )
        n = x.shape[1]
        mem = TraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("colind", mask.colind)
        mem.register("values", mask.values)
        mem.register("X", x.ravel())
        mem.register("Y", y.ravel())
        mem.register("E", np.zeros(mask.nnz, dtype=VALUE_DTYPE))
        segs = cnt.dense_segments(n)
        lanes = np.arange(32)
        rowptr = mask.rowptr  # row offsets arrive via launch metadata
        for i in range(mask.nrows):
            row_start, row_end = int(rowptr[i]), int(rowptr[i + 1])
            if row_end == row_start:
                continue
            xrow = np.zeros(n, dtype=np.float64)
            for start, length in segs:
                seg_mask = lanes < length
                xrow[start:start + length] = mem.load(
                    "X", i * n + start + lanes, mask=seg_mask
                )
            for ptr in range(row_start, row_end, 32):
                tile_len = min(32, row_end - ptr)
                tile_mask = lanes < tile_len
                ks = mem.load("colind", ptr + lanes, mask=tile_mask)
                vs = mem.load("values", ptr + lanes, mask=tile_mask)
                dots = np.zeros(tile_len)
                for t in range(tile_len):
                    k = int(ks[t])
                    acc = 0.0
                    for start, length in segs:
                        seg_mask = lanes < length
                        yseg = mem.load("Y", k * n + start + lanes, mask=seg_mask)
                        acc += float(np.dot(xrow[start:start + length], yseg))
                    dots[t] = acc
                out_vals = np.zeros(32)
                out_vals[:tile_len] = vs.astype(np.float64) * dots
                mem.store("E", ptr + lanes, out_vals, mask=tile_mask)
        evals = mem.buffer("E").astype(VALUE_DTYPE)
        return mask.with_values(evals), mem.stats

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        """Access model for feature width ``n`` (columns of X and Y)."""
        stats = KernelStats()
        m, nnz = a.nrows, a.nnz
        segs = cnt.dense_segments(n)
        sec_per_row = sum((length + 7) // 8 for _, length in segs)

        # X rows: loaded once per occupied row (reused across the row's run).
        occupied = cnt.occupied_rows(a)
        stats.global_load.instructions += occupied * len(segs)
        stats.global_load.transactions += occupied * sec_per_row
        stats.global_load.requested_bytes += occupied * n * 4
        stats.global_load.l1_filtered_transactions += occupied * sec_per_row

        # Y rows: one coalesced stream per nonzero.
        stats.global_load.instructions += nnz * len(segs)
        stats.global_load.transactions += nnz * sec_per_row
        stats.global_load.requested_bytes += nnz * n * 4
        stats.global_load.l1_filtered_transactions += nnz * sec_per_row

        # Mask structure: coalesced tiles of colind (+values for scaling).
        tiles = cnt.count_tile_loads(a, 32)
        stats.global_load.instructions += 2 * tiles.instructions
        stats.global_load.transactions += 2 * tiles.sectors
        stats.global_load.requested_bytes += 2 * tiles.requested_bytes
        stats.global_load.l1_filtered_transactions += 2 * tiles.sectors

        # Output: one value per nonzero, coalesced along the run.
        out = cnt.count_tile_loads(a, 32)
        stats.global_store.instructions += out.instructions
        stats.global_store.transactions += out.sectors
        stats.global_store.requested_bytes += 4 * nnz

        tx = stats.traffic("X")
        tx.sectors = occupied * sec_per_row
        tx.unique_bytes = m * n * 4
        tx.reuse_is_local = True
        ty = stats.traffic("Y")
        ty.sectors = nnz * sec_per_row
        ty.unique_bytes = cnt.unique_b_columns(a) * n * 4
        ty.reuse_is_local = False

        stats.flops = 2 * nnz * n  # multiply + tree-add per element
        # Shuffle-tree reduction: log2(32) warp ops per nonzero segment.
        stats.alu_instructions = 5 * nnz * len(segs) + 10 * m

        warps = max((nnz + 31) // 32, 1)
        launch = LaunchConfig(
            blocks=(warps + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=_THREADS_PER_BLOCK * 8,
        )
        return stats, launch, ExecHints(mlp=self.mlp)

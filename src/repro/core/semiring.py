"""SpMM-like operator definitions (re-export of :mod:`repro.semiring`).

The implementation lives in the dependency-free top-level module so the
sparse substrate's oracle functions can use it without importing the
kernel package; the public API keeps it under ``repro.core`` where the
paper's contribution lives.
"""

from repro.semiring import (
    MAX_TIMES,
    MEAN_TIMES,
    MIN_TIMES,
    PLUS_TIMES,
    Semiring,
    builtin_semirings,
)

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MAX_TIMES",
    "MIN_TIMES",
    "MEAN_TIMES",
    "builtin_semirings",
]

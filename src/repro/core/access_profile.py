"""Per-matrix access profiles: histogram closed forms for sector counting.

Every analytic ``count()`` in the simulator reduces to the same handful
of per-matrix quantities — how many 32 B sectors a warp touches walking a
sparse row, loading its 32-element tiles, or streaming dense row
segments of ``B``/``C``.  The old counters in :mod:`repro.core._counting`
re-derived these from scratch per call, expanding O(nnz) temporaries and
looping over column segments in Python when ``N % 8 != 0``.

Following the observation (Yang, Buluç & Owens, *Design Principles for
Sparse Matrix Multiplication on the GPU*) that SpMM cost models are
functions of the row-length *distribution*, this module collapses the
counters into closed forms over two small histograms computed once per
matrix:

* the ``(start mod 8, length)`` pair histogram of the rows, and
* the ``colind mod 8`` residue-class histogram of the nonzeros.

The key identity: :func:`repro.gpusim.memory.segment_sectors` for
4-byte elements is invariant under ``start -> start + 8`` (shifting a
range by one full sector shifts both its first and last sector by one),
so a contiguous range's sector count depends only on ``(start mod 8,
length)``.  Rows sharing that pair are interchangeable, and a nonzero's
``B``-row base address ``colind * N`` depends only on ``colind mod 8``.
Aligned widths (``N % 8 == 0``) need only the row-length histogram; the
unaligned case becomes one vectorized :func:`segment_sectors` call over
an ``(8, n_segments)`` base grid — O(distinct lengths + segments)
instead of O(nnz x segments).

:class:`AccessProfile` instances are built lazily, cached on the
(immutable) :class:`~repro.sparse.csr.CSRMatrix` via
:func:`access_profile`, and memoize their per-``N``/per-tile results, so
a sweep touching the same matrix at many widths, kernels, and GPUs pays
the O(nnz) histogram pass exactly once.  Hits and misses surface as the
``access_profile.hits`` / ``.misses`` counters.  Exactness against the
retained array-expansion oracles is enforced bit-for-bit by
``tests/test_access_profile.py`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.gpusim.memory import segment_sectors
from repro.sparse.csr import CSRMatrix

__all__ = [
    "ELEMS_PER_SECTOR",
    "AccessTotals",
    "AccessProfile",
    "dense_segments",
    "access_profile",
    "seed_access_profile",
    "clear_access_profile",
]

ELEMS_PER_SECTOR = 8  # 32-byte sector / 4-byte element


def dense_segments(n: int) -> List[Tuple[int, int]]:
    """The ``(start_column, length)`` of each 32-wide warp load segment
    covering ``n`` columns.  Independent of CF: a CF-coarsened warp issues
    CF of these segments itself, so the union over the row is identical.
    """
    return [(s, min(32, n - s)) for s in range(0, n, 32)]


@dataclass(frozen=True)
class AccessTotals:
    """Totals of one access pattern over the whole kernel."""

    instructions: int
    sectors: int
    requested_bytes: int


class AccessProfile:
    """Lazily-memoized sector-count closed forms for one CSR matrix.

    Construction runs the two O(nnz) histogram passes; every query after
    that is O(distinct row lengths) (aligned) or O(8 x segments)
    (unaligned) and memoized per ``n``/``tile``.
    """

    __slots__ = (
        "nrows",
        "ncols",
        "nnz",
        "unique_b_columns",
        "occupied_rows",
        "_pl_phase",
        "_pl_len",
        "_pl_count",
        "_colind_mod8",
        "_col_counts",
        "_b_loads",
        "_c_stores",
        "_tiles",
        "_grids",
        "_broadcast",
    )

    def __init__(self, a: CSRMatrix) -> None:
        self.nrows = a.nrows
        self.ncols = a.ncols
        self.nnz = a.nnz
        lengths = a.row_lengths()
        phases = a.rowptr64()[:-1] % ELEMS_PER_SECTOR
        # (start-phase, length) pair histogram: encode both into one key
        # so a single np.unique pass yields the joint distribution.
        span = int(lengths.max()) + 1 if lengths.size else 1
        pairs, counts = np.unique(phases * span + lengths, return_counts=True)
        self._pl_phase = pairs // span
        self._pl_len = pairs % span
        self._pl_count = counts.astype(np.int64)
        # Residue classes of the nonzeros' column indices: the B-row base
        # address colind*N has phase (colind mod 8 * N) mod 8.
        self._colind_mod8 = np.bincount(
            a.colind % ELEMS_PER_SECTOR, minlength=ELEMS_PER_SECTOR
        ).astype(np.int64)
        self.unique_b_columns = int(np.unique(a.colind).size) if a.nnz else 0
        self.occupied_rows = int((lengths > 0).sum())
        #: int64[ncols] multiplicity of each column, built lazily by the
        #: first incremental update (it is only needed to maintain
        #: ``unique_b_columns`` across deltas) — maintenance state, not
        #: part of the query surface or the parity contract.
        self._col_counts: "np.ndarray | None" = None
        self._b_loads: Dict[int, AccessTotals] = {}
        self._c_stores: Dict[int, AccessTotals] = {}
        self._tiles: Dict[int, AccessTotals] = {}
        self._grids: Dict[int, np.ndarray] = {}
        self._broadcast: int = -1

    # ------------------------------------------------------------------
    # Dense-side counters (B loads / C stores)
    # ------------------------------------------------------------------
    def _phase_grid(self, n: int) -> np.ndarray:
        """``int64[8]``: total sectors of one dense row of width ``n``
        whose base address is ``j`` elements past a sector boundary,
        summed over all of the row's 32-wide segments — one vectorized
        ``segment_sectors`` call over the (8, n_segments) base grid."""
        grid = self._grids.get(n)
        if grid is None:
            seg_starts = np.arange(0, n, 32, dtype=np.int64)
            seg_lens = np.minimum(32, n - seg_starts)
            bases = np.arange(ELEMS_PER_SECTOR, dtype=np.int64)[:, None] + seg_starts[None, :]
            grid = segment_sectors(bases, seg_lens[None, :]).sum(axis=1)
            self._grids[n] = grid
        return grid

    def _aligned_row_sectors(self, n: int) -> int:
        """Sectors of one dense row of width ``n`` starting on a sector
        boundary (the ``N % 8 == 0`` closed form)."""
        return sum((length + 7) // 8 for _, length in dense_segments(n))

    def b_loads(self, n: int) -> AccessTotals:
        """Dense-matrix loads: one 32-wide segment load per nonzero per
        segment of the row span.  Exact sector count."""
        n = int(n)
        out = self._b_loads.get(n)
        if out is not None:
            return out
        nseg = len(dense_segments(n))
        instructions = self.nnz * nseg
        requested = self.nnz * n * 4
        if n % ELEMS_PER_SECTOR == 0:
            sectors = self.nnz * self._aligned_row_sectors(n)
        else:
            # Nonzero with colind ≡ j (mod 8) loads a row based at phase
            # (j*n) mod 8; weight the per-phase grid by the residue counts.
            phase_of = (np.arange(ELEMS_PER_SECTOR, dtype=np.int64) * n) % ELEMS_PER_SECTOR
            sectors = int(np.dot(self._colind_mod8, self._phase_grid(n)[phase_of]))
        out = AccessTotals(int(instructions), int(sectors), int(requested))
        self._b_loads[n] = out
        return out

    def c_stores(self, n: int) -> AccessTotals:
        """Output stores: one segment store per (row, segment)."""
        n = int(n)
        out = self._c_stores.get(n)
        if out is not None:
            return out
        m = self.nrows
        nseg = len(dense_segments(n))
        instructions = m * nseg
        requested = m * n * 4
        if n % ELEMS_PER_SECTOR == 0:
            sectors = m * self._aligned_row_sectors(n)
        else:
            # Row i stores at base i*n, phase ((i mod 8)*n) mod 8; the
            # count of rows with i ≡ j (mod 8) is (m - j + 7) // 8.
            j = np.arange(ELEMS_PER_SECTOR, dtype=np.int64)
            rows_per_residue = (m - j + 7) // ELEMS_PER_SECTOR
            phase_of = (j * n) % ELEMS_PER_SECTOR
            sectors = int(np.dot(rows_per_residue, self._phase_grid(n)[phase_of]))
        out = AccessTotals(int(instructions), int(sectors), int(requested))
        self._c_stores[n] = out
        return out

    # ------------------------------------------------------------------
    # Sparse-side counters (tile loads / broadcast walks)
    # ------------------------------------------------------------------
    def tile_loads(self, tile: int = 32) -> AccessTotals:
        """Coalesced tile loads of one sparse-side array (colind *or*
        values): per row, ``ceil(L/tile)`` warp loads of up to ``tile``
        consecutive elements starting at ``rowptr[i] + t*tile``.

        Requires ``tile % 8 == 0`` (all simulated kernels use multiples
        of 32) so every tile of a row shares the row's start phase —
        callers with exotic tiles use the oracle.  Returns totals **per
        column-segment warp**.
        """
        tile = int(tile)
        if tile % ELEMS_PER_SECTOR != 0:
            raise ValueError(
                f"tile={tile} is not a multiple of {ELEMS_PER_SECTOR}; "
                "phase-histogram tiling does not apply"
            )
        out = self._tiles.get(tile)
        if out is not None:
            return out
        # tile % 8 == 0 keeps every tile of a row at the row's phase, so
        # a (phase, L) row costs full*S(phase, tile) + S(phase, L % tile).
        full = self._pl_len // tile
        rem = self._pl_len % tile
        full_tile_sectors = segment_sectors(self._pl_phase, np.full_like(self._pl_phase, tile))
        per_row = full * full_tile_sectors + segment_sectors(self._pl_phase, rem)
        sectors = int(np.dot(self._pl_count, per_row))
        instructions = int(np.dot(self._pl_count, full + (rem > 0)))
        requested = int(np.dot(self._pl_count, self._pl_len)) * 4
        out = AccessTotals(instructions, sectors, requested)
        self._tiles[tile] = out
        return out

    def broadcast_sectors(self) -> int:
        """Distinct sectors touched when a warp walks a sparse row one
        element at a time (broadcast loads), summed over rows."""
        if self._broadcast < 0:
            self._broadcast = int(
                np.dot(self._pl_count, segment_sectors(self._pl_phase, self._pl_len))
            )
        return self._broadcast

    # ------------------------------------------------------------------
    # Incremental evolution under edge deltas
    # ------------------------------------------------------------------
    def updated(
        self,
        *,
        nnz: int,
        removed_pairs: Tuple[np.ndarray, np.ndarray],
        added_pairs: Tuple[np.ndarray, np.ndarray],
        removed_cols: np.ndarray,
        added_cols: np.ndarray,
        occupied_rows: int,
        parent_colind: np.ndarray,
    ) -> "AccessProfile":
        """A new profile reflecting an edge delta, in O(Δ + changed rows
        + distinct pairs) instead of the O(nnz) constructor passes.

        ``removed_pairs``/``added_pairs`` are the ``(phase, length)``
        rows of every row whose pair changed — the rows the delta touched
        *plus* any row whose start phase rotated because the cumulative
        nnz shift before it is nonzero mod 8 (:mod:`repro.sparse.delta`
        computes both sets).  ``removed_cols``/``added_cols`` are the
        deleted and inserted column indices (value updates move no
        columns).  The result is canonically identical — same arrays,
        same ordering, same dtypes — to ``AccessProfile(child_matrix)``;
        the delta parity suite enforces this.

        ``parent_colind`` seeds the per-column multiplicity table on the
        first incremental update (one O(nnz) ``bincount``, amortized over
        the whole delta chain); afterwards ``unique_b_columns`` is
        maintained in O(Δ).
        """
        child = object.__new__(AccessProfile)
        child.nrows = self.nrows
        child.ncols = self.ncols
        child.nnz = int(nnz)

        # (phase, length) pair histogram: subtract changed rows' old
        # pairs, add their new ones, re-canonicalize.  Any common span
        # larger than every length preserves the constructor's
        # lexicographic (phase, length) ordering.
        rem_phase, rem_len = removed_pairs
        add_phase, add_len = added_pairs
        span = int(
            max(
                self._pl_len.max(initial=0),
                rem_len.max(initial=0),
                add_len.max(initial=0),
            )
        ) + 1
        keys = np.concatenate([
            self._pl_phase * span + self._pl_len,
            rem_phase * span + rem_len,
            add_phase * span + add_len,
        ])
        weights = np.concatenate([
            self._pl_count,
            np.full(rem_phase.shape[0], -1, dtype=np.int64),
            np.ones(add_phase.shape[0], dtype=np.int64),
        ])
        if ELEMS_PER_SECTOR * span <= 1 << 20:
            # Dense histogram over the (small) key space beats the
            # O(k log k) unique/scatter path; float64 weights are exact
            # for these magnitudes.
            dense = np.bincount(
                keys, weights=weights, minlength=ELEMS_PER_SECTOR * span
            ).astype(np.int64)
            if dense.min() < 0:
                raise ValueError("pair-histogram update went negative; the "
                                 "removed set does not match the parent profile")
            uniq = np.flatnonzero(dense)
            counts = dense[uniq]
        else:  # a row longer than ~128k elements: stay sparse
            uniq, inverse = np.unique(keys, return_inverse=True)
            counts = np.zeros(uniq.shape[0], dtype=np.int64)
            np.add.at(counts, inverse, weights)
            if counts.size and counts.min() < 0:
                raise ValueError("pair-histogram update went negative; the "
                                 "removed set does not match the parent profile")
            keep = counts > 0
            uniq, counts = uniq[keep], counts[keep]
        child._pl_phase = uniq // span
        child._pl_len = uniq % span
        child._pl_count = counts

        # colind mod-8 residue histogram: additive in edges.
        child._colind_mod8 = (
            self._colind_mod8
            - np.bincount(removed_cols % ELEMS_PER_SECTOR, minlength=ELEMS_PER_SECTOR)
            + np.bincount(added_cols % ELEMS_PER_SECTOR, minlength=ELEMS_PER_SECTOR)
        ).astype(np.int64)

        # Column multiplicities -> unique_b_columns in O(Δ).
        col_counts = self._col_counts
        if col_counts is None:
            col_counts = np.bincount(
                parent_colind, minlength=self.ncols
            ).astype(np.int64)
            self._col_counts = col_counts  # memoize: one seed per parent
        new_counts = col_counts.copy()
        np.subtract.at(new_counts, removed_cols, 1)
        np.add.at(new_counts, added_cols, 1)
        affected = np.unique(np.concatenate([removed_cols, added_cols]))
        if affected.size and new_counts[affected].min() < 0:
            raise ValueError("column-count update went negative; the "
                             "removed set does not match the parent profile")
        child.unique_b_columns = self.unique_b_columns + int(
            (new_counts[affected] > 0).sum() - (col_counts[affected] > 0).sum()
        )
        child._col_counts = new_counts
        child.occupied_rows = int(occupied_rows)

        # Per-n/tile memos depend on the histograms: start fresh.  The
        # base grids are pure functions of n, so they carry over.
        child._b_loads = {}
        child._c_stores = {}
        child._tiles = {}
        child._grids = dict(self._grids)
        child._broadcast = -1
        return child


def access_profile(a: CSRMatrix) -> AccessProfile:
    """The cached :class:`AccessProfile` of ``a`` (built on first use).

    Lives in the matrix's derived cache alongside ``colind64`` et al.;
    safe under concurrent builders (construction is pure, last write
    wins with an identical value).  ``access_profile.hits`` / ``.misses``
    count cache effectiveness.
    """
    from repro import obs  # late: keep the core import graph light

    prof = a._derived.get("access_profile")
    if prof is not None:
        obs.get_registry().counter("access_profile.hits").inc()
        return prof
    obs.get_registry().counter("access_profile.misses").inc()
    prof = AccessProfile(a)
    a._derived["access_profile"] = prof
    return prof


def seed_access_profile(a: CSRMatrix, prof: AccessProfile) -> None:
    """Install a profile built out-of-band — the delta path evolves the
    parent's cached profile via :meth:`AccessProfile.updated` and seeds
    it here so the child matrix never pays the O(nnz) constructor.
    Counted as ``access_profile.seeded``."""
    from repro import obs  # late: keep the core import graph light

    obs.get_registry().counter("access_profile.seeded").inc()
    a._derived["access_profile"] = prof


def clear_access_profile(a: CSRMatrix) -> None:
    """Drop ``a``'s cached profile (cold-path benchmarks and tests)."""
    a._derived.pop("access_profile", None)

#!/usr/bin/env python
"""Sampled minibatch training: the scenario where preprocessing dies.

Walks the paper's Section II-B argument end-to-end: GraphSAGE-style
neighbor sampling produces a *fresh* block adjacency every batch, so a
preprocess-based kernel (ASpT) pays its format conversion per batch while
GE-SpMM runs straight off CSR.  The example samples real batches, runs
the aggregation functionally, and prices all three kernel choices.

Run:  python examples/sampled_training.py
"""

import numpy as np

from repro import GESpMM, GTX_1080TI, uniform_random
from repro.gnn.inference import amortization_crossover, sampled_training_scenario
from repro.sparse import analyze, batch_stream, reference_spmm


def main() -> None:
    graph = uniform_random(m=50_000, nnz=500_000, seed=7, weighted=True)
    feat_dim = 64
    rng = np.random.default_rng(0)
    features = rng.random((graph.ncols, feat_dim), dtype=np.float32)
    ge = GESpMM()

    print("parent graph:", analyze(graph).summary().splitlines()[0])
    print("\nSampling 4 batches (batch=256, fanout=10) and aggregating with GE-SpMM:")
    for i, batch in enumerate(batch_stream(graph, batch_size=256, fanout=10, n_batches=4, seed=1)):
        h = ge.run(batch.block, features[batch.nodes])
        ref = reference_spmm(batch.block, features[batch.nodes])
        assert np.allclose(h, ref, atol=1e-4)
        t = ge.estimate(batch.block, feat_dim, GTX_1080TI)
        print(
            f"  batch {i}: block {batch.block.shape} nnz={batch.block.nnz:5d} "
            f"-> agg {h.shape}, simulated {t.time_s * 1e6:7.1f} us"
        )

    print("\nKernel totals over an 8-batch epoch (fwd+bwd aggregations):")
    res = sampled_training_scenario(graph, feat_dim, GTX_1080TI, n_batches=8)
    for name, t in sorted(res.times.items(), key=lambda kv: kv[1]):
        print(f"  {name:22s} {t * 1e3:8.3f} ms")

    cross = amortization_crossover(graph, 512, GTX_1080TI)
    if cross is None:
        print("\nOn this matrix ASpT's preprocess never amortizes — exactly the")
        print("regime (fresh matrices, few reuses) the paper designs GE-SpMM for.")
    else:
        print(f"\nASpT would amortize after {cross} reuses of one fixed matrix —")
        print("fine for iterative solvers, useless for sampled GNN training.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Node classification with a GCN, before and after the GE-SpMM swap.

Reproduces the paper's framework-integration story (Section IV/V-F) in
miniature: train the same GCN on the Cora twin with the DGL-style
backend using (a) cuSPARSE + transpose and (b) GE-SpMM, then compare
operator-time profiles.  The numbers are simulated device time; the
learning itself is real (NumPy autograd).

Run:  python examples/gnn_node_classification.py
"""

import numpy as np

from repro.datasets import load_cora
from repro.gnn import DGLBackend, GCN, SimDevice, train
from repro.gpusim import GTX_1080TI


def main() -> None:
    ds = load_cora()
    print(f"dataset: {ds.name} — {ds.n_nodes} nodes, {ds.graph.nnz} directed edges, "
          f"{ds.n_classes} classes, {ds.feature_dim}-dim features")

    results = {}
    for use_ge in (False, True):
        device = SimDevice(GTX_1080TI)
        model = GCN(ds.feature_dim, hidden=16, n_classes=ds.n_classes,
                    n_layers=1, rng=np.random.default_rng(0))
        backend = DGLBackend(device, use_gespmm=use_ge)
        res = train(model, backend, ds, epochs=30)
        results[backend.name] = res
        print(f"\n=== {backend.name} ===")
        print(f"loss {res.losses[0]:.3f} -> {res.losses[-1]:.3f}, "
              f"test accuracy {res.test_accuracy:.2%}")
        print(res.profile.format())

    base = results["DGL"].total_time
    accel = results["DGL + GE-SpMM"].total_time
    print(f"\nend-to-end simulated CUDA-time reduction: {base / accel:.2f}x "
          f"(paper Fig. 13 band: ~1.0-1.6x for GCN-size configs)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: run GE-SpMM on a random graph and inspect the model.

Demonstrates the three faces of every kernel in this library:

1. functional execution (``run``) — real numbers, checked vs SciPy;
2. performance modelling (``estimate``) — simulated time on a chosen GPU;
3. profiling (``profile_kernel``) — nvprof-style memory metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GESpMM,
    GTX_1080TI,
    RTX_2080,
    profile_kernel,
    reference_spmm,
    uniform_random,
)
from repro.baselines import CusparseCsrmm2, GraphBlastRowSplit
from repro.gpusim import format_metric_table


def main() -> None:
    # A uniform random sparse matrix: 16K rows, ~10 nonzeros per row
    # (the generator family behind the paper's profiling experiments).
    a = uniform_random(m=16_384, nnz=163_840, seed=1)
    rng = np.random.default_rng(0)
    b = rng.random((a.ncols, 128), dtype=np.float32)

    kernel = GESpMM()

    # 1. Functional: C = A @ B, verified against the SciPy oracle.
    c = kernel.run(a, b)
    assert np.allclose(c, reference_spmm(a, b), atol=1e-3)
    print(f"SpMM on {a}: output {c.shape}, checksum {c.sum():.1f} (matches SciPy)")

    # 2. Simulated performance on both of the paper's GPUs.
    for gpu in (GTX_1080TI, RTX_2080):
        t = kernel.estimate(a, b.shape[1], gpu)
        print(
            f"  {gpu.name:12s} simulated time {t.time_s * 1e3:7.3f} ms "
            f"({t.gflops(2 * a.nnz * b.shape[1]):6.1f} GFLOPS), bound by {t.bound_by}"
        )

    # 3. nvprof-style metrics vs the baselines.
    reports = [
        profile_kernel(k, a, 128, GTX_1080TI)
        for k in (kernel, CusparseCsrmm2(), GraphBlastRowSplit())
    ]
    print("\nKernel comparison on", GTX_1080TI.name)
    print(format_metric_table(reports))


if __name__ == "__main__":
    main()

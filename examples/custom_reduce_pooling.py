#!/usr/bin/env python
"""SpMM-like operations: user-defined reductions beyond the vendor library.

The paper's "general-purpose" claim (Sections I, IV-A): GE-SpMM accepts a
user-defined initialization + reduce function, so GNN pooling operators
(max, mean, min — or anything associative & commutative) run as one fused
kernel, while cuSPARSE only offers plus-times and forces frameworks onto
slow fallbacks.  This example:

1. runs built-in max/mean/min pooling through GE-SpMM;
2. defines a *custom* semiring (plus-absmax) and runs it;
3. shows the cuSPARSE model refusing anything but standard SpMM;
4. trains one GraphSAGE-pool step whose max aggregation is the SpMM-like.

Run:  python examples/custom_reduce_pooling.py
"""

import numpy as np

from repro import GESpMM, GTX_1080TI, MAX_TIMES, MEAN_TIMES, Semiring, uniform_random
from repro.baselines import CusparseCsrmm2, DGLFallbackSpMMLike
from repro.datasets import load_cora
from repro.gnn import DGLBackend, GraphSAGE, SimDevice, train
from repro.sparse import reference_spmm_like


def main() -> None:
    a = uniform_random(m=4096, nnz=40_960, seed=3)
    rng = np.random.default_rng(0)
    b = rng.standard_normal((a.ncols, 64)).astype(np.float32)
    ge = GESpMM()

    # 1. Built-in SpMM-like reductions.
    for semiring in (MAX_TIMES, MEAN_TIMES):
        c = ge.run(a, b, semiring)
        assert np.allclose(c, reference_spmm_like(a, b, semiring), atol=1e-4)
        t = ge.estimate(a, 64, GTX_1080TI, semiring)
        print(f"{semiring.name:12s} pooling: out {c.shape}, simulated {t.time_s * 1e6:.1f} us")

    # 2. A custom user-defined reduction: accumulate the value with the
    # largest magnitude (associative & commutative, as required).
    def absmax_pair(acc, update):
        return np.where(np.abs(update) > np.abs(acc), update, acc)

    absmax = Semiring(
        name="absmax_times",
        init=0.0,
        combine=lambda av, brow: av * brow,
        reduce=lambda stacked, axis=0: stacked[np.abs(stacked).argmax(axis=axis), np.arange(stacked.shape[1])]
        if stacked.ndim == 2 else stacked,
        reduce_pair=absmax_pair,
    )
    c = ge.run(a, b, absmax)
    print(f"custom 'absmax' pooling: out {c.shape}, |C| max {np.abs(c).max():.3f}")

    # 3. The vendor library cannot do this (the paper's Table II problem).
    try:
        CusparseCsrmm2().run(a, b, MAX_TIMES)
    except NotImplementedError as e:
        print(f"cuSPARSE model correctly refuses SpMM-like: {e}")

    # DGL's own fallback can — but at a price:
    t_fb = DGLFallbackSpMMLike().estimate(a, 64, GTX_1080TI, MAX_TIMES).time_s
    t_ge = ge.estimate(a, 64, GTX_1080TI, MAX_TIMES).time_s
    print(f"SpMM-like: DGL fallback {t_fb * 1e6:.1f} us vs GE-SpMM {t_ge * 1e6:.1f} us "
          f"({t_fb / t_ge:.2f}x — paper Table IX band 2.39x-6.15x)")

    # 4. End to end: GraphSAGE-pool, whose aggregation is exactly this op.
    ds = load_cora()
    device = SimDevice(GTX_1080TI)
    model = GraphSAGE(ds.feature_dim, 16, ds.n_classes, aggregator="pool",
                      rng=np.random.default_rng(0))
    res = train(model, DGLBackend(device, use_gespmm=True), ds, epochs=5)
    print(f"\nGraphSAGE-pool (5 epochs, GE-SpMM aggregation): "
          f"loss {res.losses[0]:.3f} -> {res.losses[-1]:.3f}; profile:")
    print(res.profile.format())


if __name__ == "__main__":
    main()

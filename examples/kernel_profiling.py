#!/usr/bin/env python
"""Kernel anatomy: trace-mode profiling and the CRC/CWM mechanisms.

Walks through the paper's Section III story on a small matrix where the
*faithful* warp-level trace is cheap:

1. execute Algorithm 1 and Algorithm 2 in trace mode and show the exact
   transaction counts the coalescing model produces;
2. confirm the closed-form (analytic) counters agree transaction-for-
   transaction with the trace;
3. sweep the coarsening factor and show the reuse/occupancy trade-off.

Run:  python examples/kernel_profiling.py
"""

import numpy as np

from repro import GTX_1080TI, RTX_2080, uniform_random
from repro.core import CRCSpMM, CWMSpMM, SimpleSpMM


def main() -> None:
    a = uniform_random(m=512, nnz=8_192, seed=5)
    rng = np.random.default_rng(0)
    b = rng.random((a.ncols, 64), dtype=np.float32)

    print(f"matrix: {a}\n")
    print(f"{'kernel':16s} {'gld insts':>10s} {'gld trans':>10s} {'gld effi':>9s} {'analytic==trace'}")
    for kernel in (SimpleSpMM(), CRCSpMM(), CWMSpMM(2)):
        _, traced = kernel.trace(a, b, GTX_1080TI)
        analytic, _, _ = kernel.count(a, b.shape[1], GTX_1080TI)
        agree = (
            traced.global_load.instructions == analytic.global_load.instructions
            and traced.global_load.transactions == analytic.global_load.transactions
        )
        print(
            f"{kernel.name:16s} {traced.global_load.instructions:>10,} "
            f"{traced.global_load.transactions:>10,} "
            f"{traced.gld_efficiency * 100:8.2f}% {str(agree):>10s}"
        )

    print("\nCoalesced Row Caching removes the broadcast loads: note the")
    print("instruction drop and the efficiency jump (paper Table V).\n")

    # CF trade-off on a larger matrix (analytic only).
    big = uniform_random(m=65_536, nnz=650_000, seed=5)
    print(f"CWM coarsening-factor sweep on {big} at N=512:")
    print(f"{'GPU':12s} {'CF':>3s} {'time(ms)':>9s} {'occupancy':>10s} {'gld tp (GB/s)':>14s}")
    for gpu in (GTX_1080TI, RTX_2080):
        for cf in (1, 2, 4, 8):
            kernel = CRCSpMM() if cf == 1 else CWMSpMM(cf)
            t = kernel.estimate(big, 512, gpu)
            print(
                f"{gpu.name:12s} {cf:>3d} {t.time_s * 1e3:9.3f} "
                f"{t.occupancy.achieved:10.2f} {t.gld_throughput / 1e9:14.1f}"
            )
    print("\nCF=2 peaks throughput; CF=8 loses occupancy (paper Table VI / Fig 9).")


if __name__ == "__main__":
    main()

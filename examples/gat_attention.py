#!/usr/bin/env python
"""Attention-style GNN inference: SDDMM -> edge softmax -> SpMM.

The paper closes by arguing that future GNN models need flexible sparse
primitives beyond what vendor libraries ship; its successor project
(dgSPARSE) pairs GE-SpMM with SDDMM for exactly this pipeline.  This
example runs one GAT-style attention head over a citation twin:

1. project features (GEMM);
2. compute dot-product attention logits on the graph's edges (SDDMM);
3. normalize per destination (edge softmax);
4. aggregate with the attention weights (GE-SpMM).

Every stage is functionally executed and priced on the simulated GPU.

Run:  python examples/gat_attention.py
"""

import numpy as np

from repro import GESpMM, GTX_1080TI
from repro.core.sddmm import GESDDMM, edge_softmax
from repro.datasets import load_cora
from repro.gnn import SimDevice
from repro.sparse import reference_spmm


def main() -> None:
    ds = load_cora()
    adj = ds.graph.add_self_loops()
    rng = np.random.default_rng(0)
    d_model = 64

    device = SimDevice(GTX_1080TI)
    spmm = GESpMM()
    sddmm = GESDDMM()

    # 1. Projection (one attention head).
    w = rng.standard_normal((ds.feature_dim, d_model)).astype(np.float32) * 0.05
    h = ds.features @ w
    device.record("GEMM", device.gemm_time(ds.n_nodes, ds.feature_dim, d_model))

    # 2. Attention logits on edges: e_ij = <h_i, h_j> / sqrt(d).
    logits = sddmm.run_xy(adj, h / np.sqrt(d_model), h)
    device.record("SDDMM", sddmm.estimate(adj, d_model, GTX_1080TI).time_s)

    # 3. Destination-wise softmax.
    att = edge_softmax(logits)
    device.record("edge_softmax", device.elementwise_time(adj.nnz, n_arrays=3))

    # 4. Attention-weighted aggregation.
    out = spmm.run(att, h)
    device.record("SpMM", spmm.estimate(att, d_model, GTX_1080TI).time_s)

    assert np.allclose(out, reference_spmm(att, h), atol=1e-3)
    row_sums = np.zeros(adj.nrows)
    np.add.at(row_sums, np.repeat(np.arange(adj.nrows), att.row_lengths()),
              att.values.astype(np.float64))
    assert np.allclose(row_sums, 1.0, rtol=1e-4), "softmax must normalize each node"

    print(f"GAT-style head on {ds.name}: {adj.nnz} edges, d_model={d_model}")
    print(f"output {out.shape}, attention rows sum to 1.0\n")
    print("simulated device time per stage:")
    print(device.profile().format())
    sparse_share = (device.profile().share("SpMM") + device.profile().share("SDDMM")) * 100
    print(f"\nSDDMM + SpMM take {sparse_share:.0f}% here (tiny graph: the dense")
    print("projection still dominates); their share grows with graph size —")
    print("the pair of sparse primitives the paper's line of work")
    print("(GE-SpMM -> dgSPARSE) provides to frameworks.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Dynamic graphs: streaming edge deltas with O(delta) state maintenance.

GNN serving rarely sees a static graph: edges arrive and expire between
inference calls.  Rebuilding the CSR matrix, its derived arrays, and the
access profile from scratch per batch costs O(nnz log nnz); the delta
path (``repro.sparse.delta``) patches them in O(batch + touched rows).
This example simulates an inference service over an evolving graph:

1. tune an autotuned SpMM once on the initial graph;
2. stream small mixed edge batches through ``apply_delta`` — structural
   drift stays below the re-tune thresholds, so every batch *carries
   over* the tuned kernel choice (zero tuner invocations) while results
   stay bit-identical to a from-scratch rebuild;
3. drop each superseded version's memo/disk entries with
   ``invalidate_matrix_caches`` — entries for other matrices survive;
4. inject a hub (one row suddenly gains hundreds of edges) — drift
   crosses the thresholds, ``rekey_after_delta`` drops the stale choice,
   and the next call re-tunes for the new skew.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro import obs
from repro.core.tuning import RetuneThresholds, TunedSpMM
from repro.gpusim import GTX_1080TI
from repro.sparse import (
    EdgeDelta,
    apply_delta,
    csr_from_coo,
    invalidate_matrix_caches,
    power_law,
    reference_spmm,
    structural_drift,
)


def random_delta(a, batch, rng):
    """A mixed batch: a third each inserts, deletes, value updates."""
    third = batch // 3
    rows, cols = a.coo_rows(), a.colind64()
    di = rng.choice(a.nnz, size=third, replace=False)
    ui = rng.choice(np.setdiff1d(np.arange(a.nnz), di), size=third, replace=False)
    keys = rows * a.ncols + cols
    cand = np.unique(
        rng.integers(0, a.nrows, size=8 * third) * a.ncols
        + rng.integers(0, a.ncols, size=8 * third)
    )
    pos = np.searchsorted(keys, cand)
    absent = cand[(pos >= keys.size) | (keys[np.minimum(pos, keys.size - 1)] != cand)]
    ins = rng.permutation(absent)[:third]
    return EdgeDelta.new(
        inserts=(ins // a.ncols, ins % a.ncols,
                 rng.standard_normal(ins.size).astype(np.float32)),
        deletes=(rows[di], cols[di]),
        updates=(rows[ui], cols[ui],
                 rng.standard_normal(third).astype(np.float32)),
    )


def hub_delta(a, degree, rng):
    """The skew event: one row suddenly gains ``degree`` edges."""
    stored = np.sort(a.colind64()[a.rowptr64()[0]:a.rowptr64()[1]])
    absent = np.setdiff1d(np.arange(a.ncols), stored)
    cols = rng.permutation(absent)[:degree]
    return EdgeDelta.new(
        inserts=(np.zeros(cols.size, dtype=np.int64), cols,
                 rng.standard_normal(cols.size).astype(np.float32)),
    )


def tuner_invocations():
    reg = obs.get_registry()
    return int(sum(
        c["value"]
        for c in reg.snapshot()
        if c["name"] == "tuning.tuned_spmm.lookups"
        and c["labels"].get("cached") is False
    ))


def main() -> None:
    rng = np.random.default_rng(11)
    gpu = GTX_1080TI
    live = power_law(3000, 30_000, seed=5, weighted=True)
    b = rng.standard_normal((live.ncols, 64)).astype(np.float32)

    kernel = TunedSpMM()
    thresholds = RetuneThresholds()  # gini +-0.05, max/mean x1.5, regime flip

    c = kernel.run(live, b, gpu=gpu)
    print(f"initial graph: {live.nnz} edges, tuner invocations: "
          f"{tuner_invocations()}")

    # -- 2. a stream of small batches: tuned choice carried over --------
    print("\nstreaming 8 mixed batches (~0.5% of edges each):")
    for step in range(8):
        delta = random_delta(live, batch=150, rng=rng)
        new = apply_delta(live, delta)
        drift = structural_drift(live, new)
        retuned = kernel.rekey_after_delta(live, new, thresholds)
        invalidate_matrix_caches(live)  # superseded version's entries only
        live = new
        c = kernel.run(live, b, gpu=gpu)
        assert np.allclose(c, reference_spmm(live, b), atol=1e-4)
        print(f"  step {step}: gini moved {drift.gini_delta:+.4f}, "
              f"max/mean x{drift.max_over_mean_ratio:.3f} -> "
              f"{'RE-TUNED' if retuned else 'carried over'}")
    print(f"tuner invocations after 8 batches: {tuner_invocations()} "
          f"(still the initial one)")

    # Bit-exact parity with a from-scratch build of the same edges.
    rebuilt = csr_from_coo(live.coo_rows(), live.colind64(), live.values,
                           shape=live.shape)
    assert rebuilt.fingerprint() == live.fingerprint()
    print("fingerprint parity with a from-scratch rebuild: OK")

    # -- 4. the skew event: a hub forms, thresholds fire ----------------
    delta = hub_delta(live, degree=600, rng=rng)
    new = apply_delta(live, delta)
    drift = structural_drift(live, new)
    retuned = kernel.rekey_after_delta(live, new, thresholds)
    invalidate_matrix_caches(live)
    live = new
    print(f"\nhub event (+600 edges on one row): gini moved "
          f"{drift.gini_delta:+.4f}, max/mean x{drift.max_over_mean_ratio:.3f} "
          f"-> {'RE-TUNED' if retuned else 'carried over'}")
    assert retuned, "hub should cross the re-tune thresholds"

    c = kernel.run(live, b, gpu=gpu)  # lazy re-selection happens here
    assert np.allclose(c, reference_spmm(live, b), atol=1e-4)
    print(f"tuner invocations after hub: {tuner_invocations()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Mini SNAP sweep: GE-SpMM vs baselines on a suite subset (Fig 11 feel).

Sweeps a handful of SNAP-twin matrices across feature widths on both
GPUs and prints the per-matrix GFLOPS table plus geometric-mean
speedups — the small-scale version of ``benchmarks/bench_fig11_table7``.

Run:  python examples/snap_sweep.py [n_graphs]
"""

import sys

from repro.baselines import CusparseCsrmm2, GraphBlastRowSplit
from repro.bench import format_table, geomean, run_sweep, speedup_series
from repro.core import GESpMM
from repro.datasets import load_suite
from repro.gpusim import GTX_1080TI, RTX_2080


def main(n_graphs: int = 8) -> None:
    names = sorted(load_suite(max_nnz=150_000).keys())[:n_graphs]
    suite = load_suite(max_nnz=150_000, names=names)
    kernels = [GraphBlastRowSplit(), CusparseCsrmm2(), GESpMM()]
    widths = [128, 512]
    gpus = [GTX_1080TI, RTX_2080]
    results = run_sweep(kernels, suite, widths, gpus)

    for gpu in gpus:
        rows = []
        for g in suite:
            row = [g]
            for n in widths:
                vals = {r.kernel: r.gflops for r in results
                        if r.graph == g and r.gpu == gpu.name and r.n == n}
                row.append(" / ".join(f"{vals[k.name]:.0f}" for k in kernels))
            rows.append(tuple(row))
        print(format_table(["matrix"] + [f"N={n} (GB/cuSP/GE) GFLOPS" for n in widths],
                           rows, title=f"\n{gpu.name}"))
        for n in widths:
            for base in ("cuSPARSE csrmm2", "GraphBLAST rowsplit"):
                s = geomean(speedup_series(results, "GE-SpMM", base, gpu.name, n).values())
                print(f"  N={n}: GE-SpMM vs {base}: {s:.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
